"""Multi-core scale-out invariants: none of the levers may change results.

The scale-out work trades nothing for speed, and these tests pin that down:

* **Thread invariance** — the threaded native kernel partitions lanes into
  disjoint blocks, so any ``kernel_threads`` count must leave a bit-identical
  value store, for every registry design, under driven input sequences and
  under compiled spec stimulus alike.
* **Limb-store parity** — 61..240-bit nets moved from the object-dtype
  whole-module fallback onto int64 limb arrays; forcing a module back onto
  the object store (the old exact-arithmetic oracle) must reproduce the limb
  path cycle for cycle, and the lane power estimator must match the scalar
  estimator on a limb-store design.
* **Sharded characterization** — fanning ``characterize_many`` over worker
  processes (one warm engine per worker) must return the same models and
  metrics as the in-process serial loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.designs.registry import all_designs, build_flat, get_design
from repro.netlist import flatten
from repro.netlist.components import Adder, Comparator, LogicOp, Multiplier
from repro.power import (
    CharacterizationEngine,
    build_seed_library,
    characterize_many,
)
from repro.power.lane_estimator import BatchRTLPowerEstimator
from repro.power.rtl_estimator import RTLPowerEstimator
from repro.sim import BatchSimulator
from repro.sim.kernels import find_compiler
from repro.stim import SpecTestbench
from repro.stim.driver import BatchStimulusDriver

needs_cc = pytest.mark.skipif(
    find_compiler() is None, reason="no C compiler on this host"
)

#: 1 = the serial reference; 2 and 8 exercise even and lane-remainder splits
THREAD_COUNTS = (1, 2, 8)
#: deliberately not a multiple of any thread count (remainder lane blocks)
N_LANES = 65
N_CYCLES = 16

SPEC_DESIGNS = sorted(
    name for name in all_designs() if get_design(name).stimulus is not None
)


def _input_sequences(module, rng, n_lanes=N_LANES, n_cycles=N_CYCLES):
    return {
        name: rng.integers(
            0, 1 << min(port.net.width, 16), size=(n_cycles, n_lanes), dtype=np.int64
        )
        for name, port in module.ports.items()
        if port.is_input
    }


def _native_simulator(design_name, n_threads, n_lanes=N_LANES):
    simulator = BatchSimulator(
        build_flat(design_name), n_lanes,
        kernel_backend="native", kernel_threads=n_threads,
    )
    if simulator.kernel_backend != "native":
        pytest.skip(f"native kernel unavailable ({simulator.kernel_fallback})")
    simulator.reset()
    return simulator


# ---------------------------------------------------------------------------
# Thread-count invariance.
# ---------------------------------------------------------------------------


@needs_cc
@pytest.mark.parametrize("design_name", sorted(all_designs()))
def test_thread_count_bit_invariance(design_name):
    """Driven runs: every thread count leaves a bit-identical value store."""
    rng = np.random.default_rng(hash(design_name) % (2**32))
    sequences = _input_sequences(build_flat(design_name), rng)

    def run(n_threads):
        simulator = _native_simulator(design_name, n_threads)
        for cycle in range(N_CYCLES):
            simulator.set_inputs({name: sequences[name][cycle] for name in sequences})
            simulator.settle()
            simulator.clock_edge()
        simulator.settle()
        return simulator._v.copy()

    reference = run(THREAD_COUNTS[0])
    for n_threads in THREAD_COUNTS[1:]:
        assert np.array_equal(reference, run(n_threads)), (
            f"{design_name}: {n_threads}-thread store differs from serial"
        )


@needs_cc
@pytest.mark.parametrize("design_name", SPEC_DESIGNS)
def test_thread_count_invariance_under_spec_stimulus(design_name):
    """Spec-driven runs (the lane-sweep path) are thread-count invariant too."""
    spec = get_design(design_name).make_stimulus_spec().replace(n_cycles=N_CYCLES)

    def run(n_threads):
        simulator = _native_simulator(design_name, n_threads, n_lanes=8)
        BatchStimulusDriver(simulator, spec).run()
        return simulator._v.copy()

    reference = run(THREAD_COUNTS[0])
    for n_threads in THREAD_COUNTS[1:]:
        assert np.array_equal(reference, run(n_threads)), (
            f"{design_name}: {n_threads}-thread spec-driven store differs "
            f"from serial"
        )


#: enough lanes for 3 BLOCK_LANES=128 blocks (the last one a remainder), so
#: the threaded fused-NumPy kernel genuinely splits work across workers
N_LANES_WIDE = 300


def _numpy_simulator(design_name, n_threads, n_lanes=N_LANES_WIDE):
    simulator = BatchSimulator(
        build_flat(design_name), n_lanes,
        kernel_backend="numpy", kernel_threads=n_threads,
    )
    assert simulator.kernel_backend == "numpy"
    simulator.reset()
    return simulator


@pytest.mark.parametrize("design_name", sorted(all_designs()))
def test_numpy_thread_count_bit_invariance(design_name):
    """The threaded fused-NumPy kernel is bit-identical to its serial self."""
    rng = np.random.default_rng(hash(design_name) % (2**32))
    sequences = _input_sequences(
        build_flat(design_name), rng, n_lanes=N_LANES_WIDE, n_cycles=8
    )

    def run(n_threads):
        simulator = _numpy_simulator(design_name, n_threads)
        if n_threads > 1:
            # 300 lanes = 3 blocks: the multi-thread runs really fan out
            assert simulator.kernel_threads == min(n_threads, 3)
        for cycle in range(8):
            simulator.set_inputs(
                {name: sequences[name][cycle] for name in sequences}
            )
            simulator.settle()
            simulator.clock_edge()
        simulator.settle()
        return simulator._v.copy()

    reference = run(THREAD_COUNTS[0])
    for n_threads in THREAD_COUNTS[1:]:
        assert np.array_equal(reference, run(n_threads)), (
            f"{design_name}: {n_threads}-thread numpy store differs from "
            f"serial"
        )


@pytest.mark.parametrize("design_name", SPEC_DESIGNS)
def test_numpy_thread_invariance_under_spec_stimulus(design_name):
    """Spec-driven fused-NumPy runs are thread-count invariant too."""
    spec = get_design(design_name).make_stimulus_spec().replace(n_cycles=8)

    def run(n_threads):
        simulator = _numpy_simulator(design_name, n_threads, n_lanes=200)
        BatchStimulusDriver(simulator, spec).run()
        return simulator._v.copy()

    reference = run(THREAD_COUNTS[0])
    for n_threads in THREAD_COUNTS[1:]:
        assert np.array_equal(reference, run(n_threads)), (
            f"{design_name}: {n_threads}-thread numpy spec-driven store "
            f"differs from serial"
        )


def test_numpy_threads_resolve_from_environment(monkeypatch):
    """REPRO_KERNEL_THREADS drives the numpy kernel like the native one."""
    monkeypatch.setenv("REPRO_KERNEL_THREADS", "2")
    simulator = BatchSimulator(
        build_flat("binary_search"), N_LANES_WIDE, kernel_backend="numpy"
    )
    assert simulator.kernel_threads == 2
    assert simulator.kernel.n_threads == 2


def test_numpy_thread_switch_roundtrip_is_bit_identical():
    """One simulator flipping threaded -> serial keeps producing the same
    store as a never-threaded run (mode switches can't corrupt state)."""
    rng = np.random.default_rng(11)
    sequences = _input_sequences(
        build_flat("binary_search"), rng, n_lanes=N_LANES_WIDE, n_cycles=12
    )

    def run(thread_schedule):
        simulator = _numpy_simulator("binary_search", thread_schedule[0])
        for cycle in range(12):
            simulator.kernel.set_threads(
                thread_schedule[cycle % len(thread_schedule)]
            )
            simulator.set_inputs(
                {name: sequences[name][cycle] for name in sequences}
            )
            simulator.settle()
            simulator.clock_edge()
        simulator.settle()
        return simulator._v.copy()

    assert np.array_equal(run((1,)), run((2, 1, 3)))


# ---------------------------------------------------------------------------
# Limb-store parity against the object-dtype oracle and the scalar estimator.
# ---------------------------------------------------------------------------


def _run_wide_checksum(words, force_object):
    """Run Wide_Checksum on a fresh module; optionally force the object store."""
    module = flatten(get_design("Wide_Checksum").build())
    with pytest.MonkeyPatch.context() as mp:
        if force_object:
            # shrink the limb ceiling below the design's 168-bit state so the
            # compiler takes the old exact-int object-dtype fallback
            mp.setattr("repro.sim.batch.MAX_LIMB_WIDTH", 60)
        simulator = BatchSimulator(module, words.shape[1])
        rows = []
        for cycle in range(len(words)):
            simulator.set_inputs({"data": words[cycle], "valid": 1})
            simulator.settle()
            rows.append(simulator.get_outputs())
            simulator.clock_edge()
    return simulator, rows


def test_limb_store_matches_object_store_oracle():
    """The int64 limb path reproduces the exact-int object path cycle by cycle."""
    rng = np.random.default_rng(17)
    words = rng.integers(0, 1 << 48, size=(24, 4), dtype=np.int64)
    limb_sim, limb_rows = _run_wide_checksum(words, force_object=False)
    object_sim, object_rows = _run_wide_checksum(words, force_object=True)
    assert limb_sim.program.dtype is np.int64
    assert limb_sim.program.limbs_of  # the 168-bit state really is limbed
    assert object_sim.program.dtype is object
    for cycle, (expected, actual) in enumerate(zip(object_rows, limb_rows)):
        for port in expected:
            assert np.array_equal(expected[port], actual[port]), (
                f"cycle {cycle} output {port!r}: limb store diverged from "
                f"the object-dtype oracle"
            )


@pytest.mark.parametrize(
    "backend", ["off", "numpy"] + (["native"] if find_compiler() else [])
)
def test_wide_checksum_estimator_parity_vs_scalar(backend):
    """Lane power reports on a limb-store design match the scalar estimator."""
    design = get_design("Wide_Checksum")
    spec = design.make_stimulus_spec().replace(n_cycles=48)
    library = build_seed_library()
    scalar = RTLPowerEstimator(
        flatten(design.build()), library=library
    ).estimate(SpecTestbench(spec, seed=3))
    estimator = BatchRTLPowerEstimator(
        flatten(design.build()), library=library, kernel_backend=backend
    )
    lane = estimator.estimate_all([SpecTestbench(spec, seed=3)])[0]
    assert lane.cycles == scalar.cycles
    assert lane.total_energy_fj == pytest.approx(scalar.total_energy_fj, rel=1e-12)
    assert np.allclose(lane.cycle_energy_fj, scalar.cycle_energy_fj, rtol=1e-12)
    for name, component in scalar.components.items():
        assert lane.components[name].energy_fj == pytest.approx(
            component.energy_fj, rel=1e-12
        ), f"component {name!r} energy diverged on backend {backend!r}"


# ---------------------------------------------------------------------------
# Sharded characterization == serial characterization.
# ---------------------------------------------------------------------------


def test_sharded_characterization_matches_serial():
    components = [
        Adder("a", 8),
        LogicOp("x", "xor", 8),
        Comparator("c", 6),
        Multiplier("m", 4),
    ]
    engine = CharacterizationEngine(n_pairs=40, seed=5)
    serial = characterize_many(components, engine=engine)
    sharded = characterize_many(components, engine=engine, n_workers=2)
    assert len(serial) == len(sharded) == len(components)
    for expected, actual in zip(serial, sharded):
        assert actual.component_type == expected.component_type
        assert actual.model.base_energy_fj == expected.model.base_energy_fj
        assert list(actual.model.flat_coefficients()) == list(
            expected.model.flat_coefficients()
        )
        assert actual.metrics.r_squared == expected.metrics.r_squared
        assert actual.metrics.nrmse == expected.metrics.nrmse
        assert list(actual.reference_energies) == list(expected.reference_energies)
