"""Switching-activity extraction from VCD dumps.

This is the "offline" activity path of a conventional software power flow:
simulate, dump VCD, then count toggles per signal.  It exists both as a
baseline (its cost is part of what power emulation eliminates) and as a
cross-check for the simulator's live :class:`repro.sim.trace.SignalTrace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.vcd.parser import VCDFile, VCDSignal, parse_vcd


@dataclass
class ActivitySummary:
    """Per-signal toggle counts and densities derived from a VCD file."""

    clock_period_ns: int
    total_time_ns: int
    toggles: Dict[str, int] = field(default_factory=dict)
    widths: Dict[str, int] = field(default_factory=dict)

    @property
    def n_cycles(self) -> int:
        if self.clock_period_ns <= 0:
            return 0
        return self.total_time_ns // self.clock_period_ns

    def toggle_density(self, name: str) -> float:
        """Average toggles per bit per clock cycle for the named signal."""
        cycles = self.n_cycles
        width = self.widths.get(name, 1)
        if cycles == 0 or width == 0:
            return 0.0
        return self.toggles.get(name, 0) / (cycles * width)

    def total_toggles(self) -> int:
        return sum(self.toggles.values())


def activity_from_vcd(
    source: str | VCDFile,
    clock_period_ns: int = 10,
) -> ActivitySummary:
    """Count switching activity in a VCD file (text or already parsed)."""
    vcd = parse_vcd(source) if isinstance(source, str) else source
    summary = ActivitySummary(
        clock_period_ns=clock_period_ns, total_time_ns=vcd.end_time
    )
    for signal in vcd.signals.values():
        key = signal.name
        summary.toggles[key] = summary.toggles.get(key, 0) + signal.toggle_count()
        summary.widths[key] = signal.width
    return summary
