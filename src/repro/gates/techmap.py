"""Technology mapping: expanding RTL components into standard-cell netlists.

The mapper produces structurally plausible gate implementations (ripple-carry
adders, array multipliers, mux trees, barrel shifters, ...) whose switching
behaviour under real data is what the power-macromodel characterization engine
measures.  Sequential components (registers, memories, FSMs) are *not* mapped;
their power is covered by analytic models in :mod:`repro.power.macromodel`,
which keeps gate-level reference simulation affordable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.gates.cells import CB013_LIBRARY, StandardCellLibrary
from repro.gates.gate_netlist import GateNetlist, bit_net
from repro.netlist.components import Component


class TechmapError(Exception):
    """Raised when a component type has no gate-level mapping."""


class TechnologyMapper:
    """Maps RTL components onto a :class:`StandardCellLibrary`."""

    def __init__(self, library: StandardCellLibrary = CB013_LIBRARY) -> None:
        self.library = library
        self._dispatch = {
            "adder": self._map_adder,
            "subtractor": self._map_subtractor,
            "addsub": self._map_addsub,
            "multiplier": self._map_multiplier,
            "comparator": self._map_comparator,
            "absval": self._map_absval,
            "saturator": self._map_saturator,
            "shifter_const": self._map_shifter_const,
            "shifter_var": self._map_shifter_var,
            "mux": self._map_mux,
            "logic": self._map_logic,
            "not": self._map_not,
            "reduce": self._map_reduce,
            "concat": self._map_concat,
            "slice": self._map_slice,
            "extend": self._map_extend,
            "decoder": self._map_decoder,
        }
        # Every dispatch handler is a pure function of the component's type,
        # params and port shapes, so structurally identical components map to
        # identical netlists; caching saves re-mapping (and, downstream,
        # re-levelizing/compiling) when the same component shape is
        # characterized repeatedly.  Entries are shared and must be treated
        # as read-only by callers.
        self._map_cache: Dict[tuple, GateNetlist] = {}

    # ------------------------------------------------------------------ API
    def can_map(self, component: Component) -> bool:
        return component.type_name in self._dispatch

    @staticmethod
    def _component_key(component: Component) -> Optional[tuple]:
        """Hashable mapping-cache key, or None when params aren't freezable."""

        def freeze(value):
            if isinstance(value, (list, tuple)):
                return tuple(freeze(v) for v in value)
            return value

        ports = tuple(
            (p.name, p.width, p.direction.value) for p in component.ports.values()
        )
        try:
            params = tuple(sorted((k, freeze(v)) for k, v in component.params.items()))
            hash(params)
        except TypeError:
            return None
        return (type(component), component.type_name, component.name, params, ports)

    def map_component(self, component: Component) -> GateNetlist:
        """Return the gate netlist implementing ``component`` (cached by shape)."""
        handler = self._dispatch.get(component.type_name)
        if handler is None:
            raise TechmapError(
                f"no gate-level mapping for component type {component.type_name!r} "
                f"({component.name!r}); sequential/storage components use analytic "
                "power models instead"
            )
        key = self._component_key(component)
        if key is not None and key in self._map_cache:
            return self._map_cache[key]
        netlist = GateNetlist(f"{component.type_name}_{component.name}")
        for port in component.input_ports:
            for i in range(port.width):
                netlist.add_input(bit_net(port.name, i))
        handler(component, netlist)
        for port in component.output_ports:
            for i in range(port.width):
                netlist.add_output(bit_net(port.name, i))
        if key is not None:
            if len(self._map_cache) >= 256:
                self._map_cache.pop(next(iter(self._map_cache)))
            self._map_cache[key] = netlist
        return netlist

    # -------------------------------------------------------------- helpers
    def _cell(self, name: str):
        return self.library.cell(name)

    def _full_adder(self, netlist: GateNetlist, a: str, b: str, cin: str,
                    sum_net: Optional[str] = None) -> tuple:
        """XOR3/MAJ3 full adder; returns (sum, carry) net names."""
        s = netlist.add_gate(self._cell("XOR3"), [a, b, cin], sum_net)
        c = netlist.add_gate(self._cell("MAJ3"), [a, b, cin])
        return s, c

    def _ripple_add(
        self,
        netlist: GateNetlist,
        a_bits: Sequence[str],
        b_bits: Sequence[str],
        cin: str,
        sum_names: Optional[Sequence[Optional[str]]] = None,
    ) -> tuple:
        """Ripple-carry addition of two equal-width bit vectors; returns (sums, cout)."""
        width = len(a_bits)
        sums: List[str] = []
        carry = cin
        for i in range(width):
            target = sum_names[i] if sum_names is not None else None
            s, carry = self._full_adder(netlist, a_bits[i], b_bits[i], carry, target)
            sums.append(s)
        return sums, carry

    def _invert_bits(self, netlist: GateNetlist, bits: Sequence[str]) -> List[str]:
        return [netlist.add_gate(self._cell("INV"), [b]) for b in bits]

    def _const(self, netlist: GateNetlist, value: int) -> str:
        net = f"const_{value}_{len(netlist.constants)}"
        return netlist.add_constant(net, value)

    def _port_bits(self, component: Component, port: str) -> List[str]:
        width = component.ports[port].width
        return [bit_net(port, i) for i in range(width)]

    def _and_tree(self, netlist: GateNetlist, bits: Sequence[str]) -> str:
        return self._reduce_tree(netlist, bits, "AND2")

    def _or_tree(self, netlist: GateNetlist, bits: Sequence[str]) -> str:
        return self._reduce_tree(netlist, bits, "OR2")

    def _xor_tree(self, netlist: GateNetlist, bits: Sequence[str]) -> str:
        return self._reduce_tree(netlist, bits, "XOR2")

    def _reduce_tree(self, netlist: GateNetlist, bits: Sequence[str], cell: str) -> str:
        level = list(bits)
        if not level:
            return self._const(netlist, 0)
        while len(level) > 1:
            next_level = []
            for i in range(0, len(level) - 1, 2):
                next_level.append(netlist.add_gate(self._cell(cell), [level[i], level[i + 1]]))
            if len(level) % 2:
                next_level.append(level[-1])
            level = next_level
        return level[0]

    # ------------------------------------------------------------- mappings
    def _map_adder(self, component: Component, netlist: GateNetlist) -> None:
        a = self._port_bits(component, "a")
        b = self._port_bits(component, "b")
        cin = bit_net("cin", 0) if component.with_carry_in else self._const(netlist, 0)
        sum_names = [bit_net("y", i) for i in range(component.width)]
        _, cout = self._ripple_add(netlist, a, b, cin, sum_names)
        if component.with_carry_out:
            netlist.add_alias(bit_net("cout", 0), cout)

    def _map_subtractor(self, component: Component, netlist: GateNetlist) -> None:
        a = self._port_bits(component, "a")
        b = self._invert_bits(netlist, self._port_bits(component, "b"))
        cin = self._const(netlist, 1)
        sum_names = [bit_net("y", i) for i in range(component.width)]
        _, cout = self._ripple_add(netlist, a, b, cin, sum_names)
        if component.with_borrow_out:
            # borrow is the complement of the final carry in a - b = a + ~b + 1
            borrow = netlist.add_gate(self._cell("INV"), [cout])
            netlist.add_alias(bit_net("borrow", 0), borrow)

    def _map_addsub(self, component: Component, netlist: GateNetlist) -> None:
        a = self._port_bits(component, "a")
        b = self._port_bits(component, "b")
        sub = bit_net("sub", 0)
        b_sel = [netlist.add_gate(self._cell("XOR2"), [bit, sub]) for bit in b]
        sum_names = [bit_net("y", i) for i in range(component.width)]
        self._ripple_add(netlist, a, b_sel, sub, sum_names)

    def _map_multiplier(self, component: Component, netlist: GateNetlist) -> None:
        width_y = component.width_y
        a = self._extended_operand(
            netlist, self._port_bits(component, "a"), width_y, component.signed
        )
        b = self._extended_operand(
            netlist, self._port_bits(component, "b"), width_y, component.signed
        )
        zero = self._const(netlist, 0)
        # shift-and-add array multiplier over width_y partial-product rows
        accumulator = [zero] * width_y
        for row in range(width_y):
            row_width = width_y - row
            partial = [
                netlist.add_gate(self._cell("AND2"), [a[col], b[row]])
                for col in range(row_width)
            ]
            acc_slice = accumulator[row:]
            sums, _ = self._ripple_add(netlist, acc_slice, partial, zero)
            accumulator = accumulator[:row] + sums
        for i in range(width_y):
            netlist.add_alias(bit_net("y", i), accumulator[i])

    def _extended_operand(
        self, netlist: GateNetlist, bits: Sequence[str], width: int, signed: bool
    ) -> List[str]:
        bits = list(bits)[:width]
        if len(bits) == width:
            return bits
        fill = bits[-1] if signed else self._const(netlist, 0)
        return bits + [fill] * (width - len(bits))

    def _map_comparator(self, component: Component, netlist: GateNetlist) -> None:
        a = self._port_bits(component, "a")
        b = self._port_bits(component, "b")
        if component.signed:
            # flip MSBs so that two's-complement ordering matches unsigned ordering
            a = a[:-1] + [netlist.add_gate(self._cell("INV"), [a[-1]])]
            b = b[:-1] + [netlist.add_gate(self._cell("INV"), [b[-1]])]
        xnors = [netlist.add_gate(self._cell("XNOR2"), [x, y]) for x, y in zip(a, b)]
        eq = self._and_tree(netlist, xnors)
        netlist.add_alias(bit_net("eq", 0), eq)
        # a < b  <=>  carry out of a + ~b + 1 is 0
        b_inv = self._invert_bits(netlist, b)
        _, cout = self._ripple_add(netlist, a, b_inv, self._const(netlist, 1))
        lt = netlist.add_gate(self._cell("INV"), [cout])
        netlist.add_alias(bit_net("lt", 0), lt)
        gt = netlist.add_gate(self._cell("NOR2"), [lt, eq])
        netlist.add_alias(bit_net("gt", 0), gt)

    def _map_absval(self, component: Component, netlist: GateNetlist) -> None:
        a = self._port_bits(component, "a")
        sign = a[-1]
        flipped = [netlist.add_gate(self._cell("XOR2"), [bit, sign]) for bit in a]
        zeros = [self._const(netlist, 0)] * len(a)
        sum_names = [bit_net("y", i) for i in range(len(a))]
        self._ripple_add(netlist, flipped, zeros, sign, sum_names)

    def _map_saturator(self, component: Component, netlist: GateNetlist) -> None:
        a = self._port_bits(component, "a")
        width_out = component.width_out
        if component.signed:
            sign = a[-1]
            # overflow when the discarded high bits + the output sign bit are not
            # all equal to the sign bit
            high = a[width_out - 1:]
            diffs = [netlist.add_gate(self._cell("XOR2"), [bit, sign]) for bit in high]
            overflow = self._or_tree(netlist, diffs)
            for i in range(width_out):
                if i == width_out - 1:
                    sat_bit = sign
                else:
                    sat_bit = netlist.add_gate(self._cell("INV"), [sign])
                out = netlist.add_gate(self._cell("MUX2"), [a[i], sat_bit, overflow])
                netlist.add_alias(bit_net("y", i), out)
        else:
            high = a[width_out:]
            overflow = self._or_tree(netlist, high) if high else self._const(netlist, 0)
            for i in range(width_out):
                out = netlist.add_gate(
                    self._cell("MUX2"), [a[i], self._const(netlist, 1), overflow]
                )
                netlist.add_alias(bit_net("y", i), out)

    def _map_shifter_const(self, component: Component, netlist: GateNetlist) -> None:
        width = component.width
        amount = component.amount
        for i in range(width):
            if component.direction == "left":
                source_index = i - amount
            else:
                source_index = i + amount
            if 0 <= source_index < width:
                netlist.add_alias(bit_net("y", i), bit_net("a", source_index))
            elif component.direction == "right" and component.arithmetic:
                netlist.add_alias(bit_net("y", i), bit_net("a", width - 1))
            else:
                netlist.add_alias(bit_net("y", i), self._const(netlist, 0))

    def _map_shifter_var(self, component: Component, netlist: GateNetlist) -> None:
        width = component.width
        current = self._port_bits(component, "a")
        sign = current[-1]
        for stage in range(component.amount_width):
            shift = 1 << stage
            sel = bit_net("amount", stage)
            next_bits: List[str] = []
            for i in range(width):
                if component.direction == "left":
                    source = current[i - shift] if i - shift >= 0 else self._const(netlist, 0)
                else:
                    if i + shift < width:
                        source = current[i + shift]
                    else:
                        source = sign if component.arithmetic else self._const(netlist, 0)
                next_bits.append(
                    netlist.add_gate(self._cell("MUX2"), [current[i], source, sel])
                )
            current = next_bits
        for i in range(width):
            netlist.add_alias(bit_net("y", i), current[i])

    def _map_mux(self, component: Component, netlist: GateNetlist) -> None:
        width = component.width
        n_inputs = component.n_inputs
        sel_bits = [bit_net("sel", i) for i in range(component.sel_width)]
        for bit in range(width):
            candidates = [bit_net(f"d{i}", bit) for i in range(n_inputs)]
            level = candidates
            for stage, sel in enumerate(sel_bits):
                next_level = []
                for i in range(0, len(level), 2):
                    if i + 1 < len(level):
                        next_level.append(
                            netlist.add_gate(self._cell("MUX2"), [level[i], level[i + 1], sel])
                        )
                    else:
                        next_level.append(level[i])
                level = next_level
                if len(level) == 1:
                    break
            netlist.add_alias(bit_net("y", bit), level[0])

    _LOGIC_CELLS = {
        "and": "AND2",
        "or": "OR2",
        "xor": "XOR2",
        "nand": "NAND2",
        "nor": "NOR2",
        "xnor": "XNOR2",
    }

    def _map_logic(self, component: Component, netlist: GateNetlist) -> None:
        cell = self._cell(self._LOGIC_CELLS[component.op])
        for i in range(component.width):
            netlist.add_gate(cell, [bit_net("a", i), bit_net("b", i)], bit_net("y", i))

    def _map_not(self, component: Component, netlist: GateNetlist) -> None:
        for i in range(component.width):
            netlist.add_gate(self._cell("INV"), [bit_net("a", i)], bit_net("y", i))

    def _map_reduce(self, component: Component, netlist: GateNetlist) -> None:
        bits = self._port_bits(component, "a")
        cell = {"and": "AND2", "or": "OR2", "xor": "XOR2"}[component.op]
        result = self._reduce_tree(netlist, bits, cell)
        netlist.add_alias(bit_net("y", 0), result)

    def _map_concat(self, component: Component, netlist: GateNetlist) -> None:
        offset = 0
        for index, width in enumerate(component.widths):
            for i in range(width):
                netlist.add_alias(bit_net("y", offset + i), bit_net(f"i{index}", i))
            offset += width

    def _map_slice(self, component: Component, netlist: GateNetlist) -> None:
        for i in range(component.width_out):
            netlist.add_alias(bit_net("y", i), bit_net("a", component.low + i))

    def _map_extend(self, component: Component, netlist: GateNetlist) -> None:
        for i in range(component.width_in):
            netlist.add_alias(bit_net("y", i), bit_net("a", i))
        fill = (
            bit_net("a", component.width_in - 1)
            if component.signed
            else self._const(netlist, 0)
        )
        for i in range(component.width_in, component.width_out):
            netlist.add_alias(bit_net("y", i), fill)

    def _map_decoder(self, component: Component, netlist: GateNetlist) -> None:
        sel_bits = self._port_bits(component, "a")
        inverted = self._invert_bits(netlist, sel_bits)
        for value in range(component.width_out):
            terms = [
                sel_bits[i] if (value >> i) & 1 else inverted[i]
                for i in range(len(sel_bits))
            ]
            netlist.add_alias(bit_net("y", value), self._and_tree(netlist, terms))
