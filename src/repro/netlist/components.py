"""Combinational RTL components.

Every component exposes named, directed, fixed-width ports and a purely
functional :meth:`Component.evaluate` that maps input values to output values.
Components never store signal values; the cycle-accurate simulator owns the
value map.  This keeps a netlist reusable across simulations and lets the
power-emulation instrumentation pass treat components uniformly.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.netlist.nets import Net
from repro.netlist.ports import Port, PortDirection
from repro.netlist.signals import (
    from_signed,
    mask_value,
    saturate,
    sign_extend,
    to_signed,
)


class Component:
    """Base class for all RTL components (combinational and sequential).

    Subclasses declare their ports in ``__init__`` via :meth:`add_port` and
    implement :meth:`evaluate`.  ``params`` records the constructor arguments
    that define the component's "shape" (widths, operation, depth, ...); the
    power-model library and the FPGA synthesis estimator key off
    ``type_name`` plus these parameters.
    """

    #: short type identifier used by power-model lookup and reports
    type_name: str = "component"
    #: True for components with internal state (registers, memories, FSMs)
    is_sequential: bool = False
    #: True when at least one output depends combinationally on an input
    has_comb_path: bool = True

    def __init__(self, name: str) -> None:
        self.name = name
        self.ports: Dict[str, Port] = {}
        self.params: Dict[str, object] = {}

    # ------------------------------------------------------------------ ports
    def add_port(self, name: str, direction: PortDirection, width: int) -> Port:
        if name in self.ports:
            raise ValueError(f"{self}: duplicate port {name!r}")
        port = Port(name=name, direction=direction, width=width)
        self.ports[name] = port
        return port

    def add_input(self, name: str, width: int) -> Port:
        return self.add_port(name, PortDirection.INPUT, width)

    def add_output(self, name: str, width: int) -> Port:
        return self.add_port(name, PortDirection.OUTPUT, width)

    def connect(self, port_name: str, net: Net) -> None:
        """Attach ``net`` to the named port, recording driver/sink links."""
        port = self.ports[port_name]
        if port.width != net.width:
            raise ValueError(
                f"{self}: port {port_name!r} has width {port.width} but net "
                f"{net.name!r} has width {net.width}"
            )
        port.net = net
        if port.is_output:
            if net.driver is not None:
                raise ValueError(
                    f"net {net.name!r} already driven by {net.driver}; cannot "
                    f"also drive it from {self.name}.{port_name}"
                )
            net.driver = (self, port_name)
        else:
            net.sinks.append((self, port_name))

    @property
    def input_ports(self) -> List[Port]:
        return [p for p in self.ports.values() if p.is_input]

    @property
    def output_ports(self) -> List[Port]:
        return [p for p in self.ports.values() if p.is_output]

    def input_nets(self) -> List[Net]:
        return [p.net for p in self.input_ports if p.net is not None]

    def output_nets(self) -> List[Net]:
        return [p.net for p in self.output_ports if p.net is not None]

    def monitored_ports(self) -> List[Port]:
        """Ports whose bits a power macromodel observes (default: all I/O)."""
        return list(self.ports.values())

    def monitored_bits(self) -> int:
        """Total number of bits observed by this component's power model."""
        return sum(p.width for p in self.monitored_ports())

    # ------------------------------------------------------------- evaluation
    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        """Compute output port values from input port values."""
        raise NotImplementedError

    # ---------------------------------------------------------------- helpers
    def macromodel_key(self) -> tuple:
        """Key used to look up a power macromodel for this component."""
        widths = tuple(sorted((p.name, p.width) for p in self.ports.values()))
        return (self.type_name, widths)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


# ---------------------------------------------------------------------------
# Arithmetic units
# ---------------------------------------------------------------------------


class Adder(Component):
    """Unsigned adder: ``y = (a + b + cin) mod 2^width`` with optional carry out."""

    type_name = "adder"

    def __init__(
        self,
        name: str,
        width: int,
        with_carry_in: bool = False,
        with_carry_out: bool = False,
    ) -> None:
        super().__init__(name)
        self.width = width
        self.with_carry_in = with_carry_in
        self.with_carry_out = with_carry_out
        self.params = {
            "width": width,
            "with_carry_in": with_carry_in,
            "with_carry_out": with_carry_out,
        }
        self.add_input("a", width)
        self.add_input("b", width)
        if with_carry_in:
            self.add_input("cin", 1)
        self.add_output("y", width)
        if with_carry_out:
            self.add_output("cout", 1)

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        total = inputs["a"] + inputs["b"] + (inputs.get("cin", 0) if self.with_carry_in else 0)
        out = {"y": mask_value(total, self.width)}
        if self.with_carry_out:
            out["cout"] = (total >> self.width) & 1
        return out


class Subtractor(Component):
    """Unsigned subtractor: ``y = (a - b) mod 2^width`` with optional borrow."""

    type_name = "subtractor"

    def __init__(self, name: str, width: int, with_borrow_out: bool = False) -> None:
        super().__init__(name)
        self.width = width
        self.with_borrow_out = with_borrow_out
        self.params = {"width": width, "with_borrow_out": with_borrow_out}
        self.add_input("a", width)
        self.add_input("b", width)
        self.add_output("y", width)
        if with_borrow_out:
            self.add_output("borrow", 1)

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        diff = inputs["a"] - inputs["b"]
        out = {"y": mask_value(diff, self.width)}
        if self.with_borrow_out:
            out["borrow"] = 1 if diff < 0 else 0
        return out


class AddSub(Component):
    """Adder/subtractor: ``y = a + b`` when ``sub == 0`` else ``a - b``."""

    type_name = "addsub"

    def __init__(self, name: str, width: int) -> None:
        super().__init__(name)
        self.width = width
        self.params = {"width": width}
        self.add_input("a", width)
        self.add_input("b", width)
        self.add_input("sub", 1)
        self.add_output("y", width)

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        if inputs["sub"] & 1:
            return {"y": mask_value(inputs["a"] - inputs["b"], self.width)}
        return {"y": mask_value(inputs["a"] + inputs["b"], self.width)}


class Multiplier(Component):
    """Multiplier.  Signed multiplication interprets operands as two's complement."""

    type_name = "multiplier"

    def __init__(
        self,
        name: str,
        width_a: int,
        width_b: Optional[int] = None,
        width_y: Optional[int] = None,
        signed: bool = False,
    ) -> None:
        super().__init__(name)
        self.width_a = width_a
        self.width_b = width_b if width_b is not None else width_a
        self.width_y = width_y if width_y is not None else self.width_a + self.width_b
        self.signed = signed
        self.params = {
            "width_a": self.width_a,
            "width_b": self.width_b,
            "width_y": self.width_y,
            "signed": signed,
        }
        self.add_input("a", self.width_a)
        self.add_input("b", self.width_b)
        self.add_output("y", self.width_y)

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        if self.signed:
            product = to_signed(inputs["a"], self.width_a) * to_signed(
                inputs["b"], self.width_b
            )
            return {"y": from_signed(product, self.width_y)}
        return {"y": mask_value(inputs["a"] * inputs["b"], self.width_y)}


class Comparator(Component):
    """Magnitude comparator producing ``lt``, ``eq`` and ``gt`` flags."""

    type_name = "comparator"

    def __init__(self, name: str, width: int, signed: bool = False) -> None:
        super().__init__(name)
        self.width = width
        self.signed = signed
        self.params = {"width": width, "signed": signed}
        self.add_input("a", width)
        self.add_input("b", width)
        self.add_output("lt", 1)
        self.add_output("eq", 1)
        self.add_output("gt", 1)

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        a, b = inputs["a"], inputs["b"]
        if self.signed:
            a = to_signed(a, self.width)
            b = to_signed(b, self.width)
        return {"lt": int(a < b), "eq": int(a == b), "gt": int(a > b)}


class AbsoluteValue(Component):
    """Two's-complement absolute value: ``y = |a|`` (MIN_INT saturates)."""

    type_name = "absval"

    def __init__(self, name: str, width: int) -> None:
        super().__init__(name)
        self.width = width
        self.params = {"width": width}
        self.add_input("a", width)
        self.add_output("y", width)

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        value = abs(to_signed(inputs["a"], self.width))
        return {"y": saturate(value, self.width, signed=False)}


class Saturator(Component):
    """Width-reducing saturator (clamps into the output range)."""

    type_name = "saturator"

    def __init__(self, name: str, width_in: int, width_out: int, signed: bool = True) -> None:
        super().__init__(name)
        self.width_in = width_in
        self.width_out = width_out
        self.signed = signed
        self.params = {"width_in": width_in, "width_out": width_out, "signed": signed}
        self.add_input("a", width_in)
        self.add_output("y", width_out)

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        value = to_signed(inputs["a"], self.width_in) if self.signed else inputs["a"]
        return {"y": saturate(value, self.width_out, self.signed)}


# ---------------------------------------------------------------------------
# Shifters
# ---------------------------------------------------------------------------


class ShifterConst(Component):
    """Constant-amount shifter, e.g. ``>> 1`` in the paper's Fig. 1 circuit."""

    type_name = "shifter_const"

    def __init__(
        self,
        name: str,
        width: int,
        amount: int,
        direction: str = "right",
        arithmetic: bool = False,
    ) -> None:
        super().__init__(name)
        if direction not in ("left", "right"):
            raise ValueError(f"direction must be 'left' or 'right', got {direction!r}")
        self.width = width
        self.amount = amount
        self.direction = direction
        self.arithmetic = arithmetic
        self.params = {
            "width": width,
            "amount": amount,
            "direction": direction,
            "arithmetic": arithmetic,
        }
        self.add_input("a", width)
        self.add_output("y", width)

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        a = inputs["a"]
        if self.direction == "left":
            return {"y": mask_value(a << self.amount, self.width)}
        if self.arithmetic:
            return {"y": from_signed(to_signed(a, self.width) >> self.amount, self.width)}
        return {"y": a >> self.amount}


class ShifterVar(Component):
    """Variable-amount (barrel) shifter."""

    type_name = "shifter_var"

    def __init__(
        self,
        name: str,
        width: int,
        amount_width: int,
        direction: str = "left",
        arithmetic: bool = False,
    ) -> None:
        super().__init__(name)
        if direction not in ("left", "right"):
            raise ValueError(f"direction must be 'left' or 'right', got {direction!r}")
        self.width = width
        self.amount_width = amount_width
        self.direction = direction
        self.arithmetic = arithmetic
        self.params = {
            "width": width,
            "amount_width": amount_width,
            "direction": direction,
            "arithmetic": arithmetic,
        }
        self.add_input("a", width)
        self.add_input("amount", amount_width)
        self.add_output("y", width)

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        a = inputs["a"]
        amount = inputs["amount"]
        if self.direction == "left":
            return {"y": mask_value(a << amount, self.width)}
        if self.arithmetic:
            return {"y": from_signed(to_signed(a, self.width) >> amount, self.width)}
        return {"y": a >> amount}


# ---------------------------------------------------------------------------
# Steering and bitwise logic
# ---------------------------------------------------------------------------


class Mux(Component):
    """N-way multiplexer with data inputs ``d0 .. d{n-1}`` and a select input.

    Out-of-range select values return input ``d{n-1}`` (the highest-indexed
    input), matching the behaviour of a mux tree built from 2:1 muxes.
    """

    type_name = "mux"

    def __init__(self, name: str, width: int, n_inputs: int) -> None:
        super().__init__(name)
        if n_inputs < 2:
            raise ValueError(f"mux needs at least 2 inputs, got {n_inputs}")
        self.width = width
        self.n_inputs = n_inputs
        self.sel_width = max(1, (n_inputs - 1).bit_length())
        self.params = {"width": width, "n_inputs": n_inputs}
        for i in range(n_inputs):
            self.add_input(f"d{i}", width)
        self.add_input("sel", self.sel_width)
        self.add_output("y", width)

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        sel = min(inputs["sel"], self.n_inputs - 1)
        return {"y": mask_value(inputs[f"d{sel}"], self.width)}


_LOGIC_OPS = {
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "nand": lambda a, b: ~(a & b),
    "nor": lambda a, b: ~(a | b),
    "xnor": lambda a, b: ~(a ^ b),
}


class LogicOp(Component):
    """Two-input bitwise logic operation (and/or/xor/nand/nor/xnor)."""

    type_name = "logic"

    def __init__(self, name: str, op: str, width: int) -> None:
        super().__init__(name)
        if op not in _LOGIC_OPS:
            raise ValueError(f"unknown logic op {op!r}; expected one of {sorted(_LOGIC_OPS)}")
        self.op = op
        self.width = width
        self.params = {"op": op, "width": width}
        self.add_input("a", width)
        self.add_input("b", width)
        self.add_output("y", width)

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        return {"y": mask_value(_LOGIC_OPS[self.op](inputs["a"], inputs["b"]), self.width)}


class NotOp(Component):
    """Bitwise complement."""

    type_name = "not"

    def __init__(self, name: str, width: int) -> None:
        super().__init__(name)
        self.width = width
        self.params = {"width": width}
        self.add_input("a", width)
        self.add_output("y", width)

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        return {"y": mask_value(~inputs["a"], self.width)}


_REDUCE_OPS = {"and", "or", "xor"}


class ReduceOp(Component):
    """Reduction operator collapsing a vector to a single bit."""

    type_name = "reduce"

    def __init__(self, name: str, op: str, width: int) -> None:
        super().__init__(name)
        if op not in _REDUCE_OPS:
            raise ValueError(f"unknown reduce op {op!r}; expected one of {sorted(_REDUCE_OPS)}")
        self.op = op
        self.width = width
        self.params = {"op": op, "width": width}
        self.add_input("a", width)
        self.add_output("y", 1)

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        a = mask_value(inputs["a"], self.width)
        if self.op == "and":
            return {"y": int(a == (1 << self.width) - 1)}
        if self.op == "or":
            return {"y": int(a != 0)}
        return {"y": bin(a).count("1") & 1}


# ---------------------------------------------------------------------------
# Bit plumbing
# ---------------------------------------------------------------------------


class Concat(Component):
    """Concatenate input vectors; ``i0`` occupies the least-significant bits."""

    type_name = "concat"

    def __init__(self, name: str, widths: Sequence[int]) -> None:
        super().__init__(name)
        if not widths:
            raise ValueError("concat needs at least one input")
        self.widths = list(widths)
        self.width_out = sum(widths)
        self.params = {"widths": tuple(widths)}
        for i, w in enumerate(widths):
            self.add_input(f"i{i}", w)
        self.add_output("y", self.width_out)

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        value = 0
        shift = 0
        for i, w in enumerate(self.widths):
            value |= mask_value(inputs[f"i{i}"], w) << shift
            shift += w
        return {"y": value}


class Slice(Component):
    """Extract bits ``[high:low]`` (inclusive) from the input vector."""

    type_name = "slice"

    def __init__(self, name: str, width_in: int, high: int, low: int) -> None:
        super().__init__(name)
        if not (0 <= low <= high < width_in):
            raise ValueError(
                f"invalid slice [{high}:{low}] of a {width_in}-bit value"
            )
        self.width_in = width_in
        self.high = high
        self.low = low
        self.width_out = high - low + 1
        self.params = {"width_in": width_in, "high": high, "low": low}
        self.add_input("a", width_in)
        self.add_output("y", self.width_out)

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        return {"y": mask_value(inputs["a"] >> self.low, self.width_out)}


class Extend(Component):
    """Zero- or sign-extend a value to a wider output."""

    type_name = "extend"

    def __init__(self, name: str, width_in: int, width_out: int, signed: bool = False) -> None:
        super().__init__(name)
        if width_out < width_in:
            raise ValueError(
                f"extend output width {width_out} is narrower than input {width_in}"
            )
        self.width_in = width_in
        self.width_out = width_out
        self.signed = signed
        self.params = {"width_in": width_in, "width_out": width_out, "signed": signed}
        self.add_input("a", width_in)
        self.add_output("y", width_out)

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        if self.signed:
            return {"y": sign_extend(inputs["a"], self.width_in, self.width_out)}
        return {"y": mask_value(inputs["a"], self.width_in)}


class Constant(Component):
    """Constant driver (e.g. the ``1`` and ``-1`` literals in the Fig. 1 circuit)."""

    type_name = "constant"
    #: constants never toggle; they need no power model
    has_comb_path = False

    def __init__(self, name: str, width: int, value: int) -> None:
        super().__init__(name)
        self.width = width
        self.value = mask_value(value, width)
        self.params = {"width": width, "value": self.value}
        self.add_output("y", width)

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        return {"y": self.value}

    def monitored_ports(self) -> List[Port]:
        return []


class Decoder(Component):
    """Binary-to-one-hot decoder."""

    type_name = "decoder"

    def __init__(self, name: str, sel_width: int) -> None:
        super().__init__(name)
        self.sel_width = sel_width
        self.width_out = 1 << sel_width
        self.params = {"sel_width": sel_width}
        self.add_input("a", sel_width)
        self.add_output("y", self.width_out)

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        return {"y": 1 << mask_value(inputs["a"], self.sel_width)}
