"""The full Fig. 2 power-emulation flow on the MPEG4 decoder composite.

Demonstrates the paper's headline use case: RTL power estimation of a large
design over a realistic workload (four QCIF frames) is impractically slow in
software but fast on the emulation platform.  The script reports the
instrumentation overhead, the FPGA capacity situation across the Virtex-II
family, the emulated power, and the modeled estimation times of the two
commercial tools against power emulation.

Run:  python examples/mpeg4_emulation_flow.py
"""

from __future__ import annotations

from repro.api import RunSpec, estimate
from repro.core import (
    InstrumentationConfig,
    SynthesisEstimator,
    VIRTEX2_DEVICES,
    instrument,
)
from repro.designs import registry
from repro.power import NEC_RTPOWER, POWERTHEATER, build_seed_library, calibrate_tool


def main() -> None:
    design = registry.get("MPEG4")
    module = design.build()
    library = build_seed_library()

    # -------------------------------------------------- instrumentation + fit
    estimator = SynthesisEstimator()
    instrumented = instrument(module, library, InstrumentationConfig(coefficient_bits=12))
    enhanced = estimator.estimate_module(instrumented.module)
    print("=== FPGA capacity across the Virtex-II family (enhanced MPEG4) ===")
    for device in sorted(VIRTEX2_DEVICES.values(), key=lambda d: d.luts):
        utilization = device.utilization(enhanced.resources)
        fits = "fits" if device.fits(enhanced.resources) else "DOES NOT FIT"
        print(f"  {device.name:9s} LUT {utilization['luts']:7.1%}  "
              f"FF {utilization['ffs']:7.1%}  BRAM {utilization['bram_kbits']:7.1%}  -> {fits}")
    print()

    # ----------------------------------------------- full flow (unified API)
    result = estimate(RunSpec(design="MPEG4", engine="emulation",
                              workload_cycles=design.nominal_cycles))
    print("=== power-emulation flow ===")
    print(result.summary())
    print(f"  {result.metadata['n_power_models']} power models inserted "
          f"({result.metadata['monitored_bits']} monitored bits); "
          f"LUT overhead {result.metadata['lut_overhead']:.1%}, "
          f"FF overhead {result.metadata['ff_overhead']:.1%}")
    print()

    # --------------------------------------- commercial tools on this workload
    bits = result.metadata["monitored_bits"]
    cycles = design.nominal_cycles
    emulation_time_s = result.timing["modeled_total_s"]
    nec = calibrate_tool(NEC_RTPOWER, cycles, bits, target_runtime_s=55 * 60.0)
    power_theater = calibrate_tool(POWERTHEATER, cycles, bits, target_runtime_s=43 * 60.0)
    print("=== estimation time for the 4-frame workload ===")
    print(f"  workload: {cycles} cycles, {bits} monitored signal bits")
    for tool in (nec, power_theater):
        runtime = tool.estimate_runtime_s(cycles, bits)
        print(f"  {tool.name:13s}: {runtime / 60.0:6.1f} min "
              f"(speedup of emulation: {runtime / emulation_time_s:6.0f}x)")
    print(f"  power emulation: {emulation_time_s:6.2f} s "
          f"(device {result.metadata['device']}, "
          f"{result.metadata['emulation_clock_mhz']:.0f} MHz)")


if __name__ == "__main__":
    main()
