"""Vld benchmark: a variable-length (prefix-code) decoder.

The decoder consumes a packed bitstream held in an on-chip memory and emits
one symbol per table lookup: a 24-bit left-justified bit buffer is refilled
16 bits at a time from the bitstream memory, the top 8 buffer bits index a
code-table ROM that returns ``(code length, symbol)``, the symbol is written
to an output memory, and a barrel shifter discards the consumed bits.  The
all-zero prefix is the end-of-block marker.  This is the front-end structure
of the MPEG4 decoder's VLD stage (bit buffer + barrel shifter + code table +
control FSM), using the simple unary code from :mod:`repro.designs.stimuli`.

Interface: ``start``; ``done``, ``count`` (number of decoded symbols).
The testbench loads ``bitstream_mem`` and reads ``out_mem`` via the backdoor.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.netlist.builder import NetlistBuilder
from repro.netlist.module import Module
from repro.sim.testbench import Testbench
from repro.designs import stimuli

WORD_BITS = 16
BUFFER_BITS = 24
BITSTREAM_DEPTH = 128
OUTPUT_DEPTH = 256
#: average cycles needed per decoded symbol (decode + emit + check + amortized refill)
CYCLES_PER_SYMBOL = 5


def build(bitstream_depth: int = BITSTREAM_DEPTH, output_depth: int = OUTPUT_DEPTH) -> Module:
    """Build the variable-length decoder."""
    table = stimuli.vld_decode_table()

    b = NetlistBuilder("Vld")
    start = b.input("start", 1)

    # ---------------------------------------------------------------- state
    buf_q = b.register("reg_buf", BUFFER_BITS, has_enable=True, has_clear=True)
    cnt_q = b.register("reg_cnt", 6, has_enable=True, has_clear=True)
    wptr_q = b.register("reg_wptr", 8, has_enable=True, has_clear=True)
    optr_q = b.register("reg_optr", 9, has_enable=True, has_clear=True)

    # ----------------------------------------------------------- code table
    prefix = b.slice(buf_q, BUFFER_BITS - 1, BUFFER_BITS - stimuli.VLD_LOOKUP_BITS,
                     name="prefix")
    entry = b.rom("code_table", 12, table, prefix)
    length = b.slice(entry, 11, 8, name="code_length")
    symbol = b.slice(entry, 7, 0, name="code_symbol")
    is_eob = b.eq(length, b.const(0, 4, name="const_len0"), name="is_eob")

    # -------------------------------------------------------- status signals
    need_fill = b.compare(cnt_q, b.const(9, 6, name="const_nine"), name="cmp_fill")[0]

    # ----------------------------------------------------------- controller
    fsm, ctrl = b.fsm(
        "ctrl",
        states=["IDLE", "CLEAR", "CHECK", "FILL_REQ", "FILL", "DECODE", "EMIT", "FINISH"],
        inputs={"start": start, "need_fill": need_fill, "eob": is_eob},
        outputs={"clear_all": 1, "buf_en": 1, "buf_fill": 1, "cnt_en": 1,
                 "wptr_en": 1, "optr_en": 1, "we": 1, "done": 1},
        moore_outputs={
            "CLEAR": {"clear_all": 1},
            "FILL": {"buf_en": 1, "buf_fill": 1, "cnt_en": 1, "wptr_en": 1},
            "EMIT": {"buf_en": 1, "cnt_en": 1, "optr_en": 1, "we": 1},
            "FINISH": {"done": 1},
        },
    )
    fsm.when("IDLE", "CLEAR", start=1)
    fsm.otherwise("CLEAR", "CHECK")
    fsm.when("CHECK", "FILL_REQ", need_fill=1)
    fsm.otherwise("CHECK", "DECODE")
    fsm.otherwise("FILL_REQ", "FILL")
    fsm.otherwise("FILL", "CHECK")
    fsm.when("DECODE", "FINISH", eob=1)
    fsm.otherwise("DECODE", "EMIT")
    fsm.otherwise("EMIT", "CHECK")
    fsm.otherwise("FINISH", "IDLE")

    # --------------------------------------------------------------- memory
    zero1 = b.const(0, 1, name="const_zero1")
    zero_w = b.const(0, WORD_BITS, name="const_zero_w")
    word = b.memory("bitstream_mem", WORD_BITS, bitstream_depth, we=zero1,
                    addr=wptr_q, wdata=zero_w, sync_read=True)
    b.memory("out_mem", 8, output_depth, we=ctrl["we"], addr=optr_q, wdata=symbol,
             sync_read=True)

    # ------------------------------------------------------------- datapath
    # refill: insert the fetched word so that its MSB lands just below the
    # currently valid bits: buf |= word << (BUFFER_BITS - WORD_BITS - cnt)
    shift_room = b.sub(b.const(BUFFER_BITS - WORD_BITS, 6, name="const_room"), cnt_q,
                       name="fill_shift_amt")
    word_ext = b.zext(word, BUFFER_BITS, name="word_ext")
    word_shifted = b.shl(word_ext, b.slice(shift_room, 3, 0, name="fill_amt4"),
                         name="fill_shifter")
    buf_filled = b.or_(buf_q, word_shifted, name="buf_or")
    cnt_filled = b.add(cnt_q, b.const(WORD_BITS, 6, name="const_16"), name="cnt_fill")

    # consume: drop the decoded code's bits
    buf_consumed = b.shl(buf_q, b.zext(length, 5, name="len_ext"), name="consume_shifter")
    cnt_consumed = b.sub(cnt_q, b.zext(length, 6, name="len_ext6"), name="cnt_consume")

    b.drive("reg_buf", d=b.mux(ctrl["buf_fill"], buf_consumed, buf_filled, name="buf_mux"),
            en=ctrl["buf_en"], clear=ctrl["clear_all"])
    b.drive("reg_cnt", d=b.mux(ctrl["buf_fill"], cnt_consumed, cnt_filled, name="cnt_mux"),
            en=ctrl["cnt_en"], clear=ctrl["clear_all"])
    b.drive("reg_wptr", d=b.add(wptr_q, b.const(1, 8, name="const_one8"), name="wptr_inc"),
            en=ctrl["wptr_en"], clear=ctrl["clear_all"])
    b.drive("reg_optr", d=b.add(optr_q, b.const(1, 9, name="const_one9"), name="optr_inc"),
            en=ctrl["optr_en"], clear=ctrl["clear_all"])

    b.output("done", ctrl["done"])
    b.output("count", optr_q)

    module = b.build()
    module.attributes["bitstream_memory"] = "bitstream_mem"
    module.attributes["out_memory"] = "out_mem"
    module.attributes["description"] = "variable-length (prefix code) decoder"
    return module


class VldTestbench(Testbench):
    """Encodes a symbol stream, decodes it in hardware and compares."""

    def __init__(self, symbols: Sequence[int], name: str = "vld_tb") -> None:
        super().__init__(name)
        self.symbols = list(symbols)
        self.words = stimuli.vld_encode(self.symbols, word_bits=WORD_BITS)
        self._started = False
        self.max_cycles = CYCLES_PER_SYMBOL * len(self.symbols) + len(self.words) * 3 + 100

    def _memory(self, simulator, suffix: str):
        for name, component in simulator.module.components.items():
            if component.type_name == "memory" and name.endswith(suffix):
                return component
        raise KeyError(f"memory {suffix!r} not found")

    def bind(self, simulator) -> None:
        self._memory(simulator, "bitstream_mem").load(self.words)
        self._started = False

    def drive(self, cycle: int, simulator):
        if not self._started:
            self._started = True
            return {"start": 1}
        return {"start": 0}

    def check(self, cycle: int, simulator) -> None:
        if simulator.get_output("done"):
            count = simulator.get_output("count")
            assert count == len(self.symbols), (
                f"decoded {count} symbols, expected {len(self.symbols)}"
            )
            out_mem = self._memory(simulator, "out_mem")
            decoded = [out_mem.read_word(i) for i in range(count)]
            assert decoded == self.symbols, "decoded symbol stream mismatch"
            self.capture("decoded", decoded)

    def finished(self, cycle: int, simulator) -> bool:
        return bool(simulator.get_output("done"))


def testbench(n_symbols: int = 120, seed: int = 8) -> VldTestbench:
    """Standard stimulus: a random symbol stream within the code's range."""
    import random

    rng = random.Random(seed)
    symbols = [rng.randint(0, stimuli.VLD_MAX_SYMBOL) for _ in range(n_symbols)]
    return VldTestbench(symbols)
