"""The ``python -m repro`` command line.

One CLI over the unified estimation API::

    python -m repro run --design binary_search --engine rtl --max-cycles 64
    python -m repro profile --design MPEG4 --top 8 --trace power.json
    python -m repro sweep --designs DCT HVPeakF --seeds 0:64 --workers 4
    python -m repro sweep --designs HVPeakF --seeds 0:32 --stimulus design
    python -m repro stim --stimulus "burst:active=4,idle=12" --design HVPeakF
    python -m repro characterize --pairs 150
    python -m repro fig3 --workers 4
    python -m repro serve --cache-dir .cache
    python -m repro submit --design DCT --seed 3
    python -m repro status
    python -m repro cache stats --cache-dir .cache
    python -m repro sweep --designs DCT --seeds 0:8 --trace trace.json
    python -m repro obs summarize trace.json
    python -m repro obs dump --url http://127.0.0.1:8350

``run`` executes one :class:`~repro.api.spec.RunSpec` through any engine,
``sweep`` fans a (design × engine × seed) grid over batch lanes + the shard
pool (``--seeds`` accepts ranges like ``0:64`` and rejects duplicates),
``stim`` describes and previews declarative stimulus specs, ``characterize``
fits macromodels against the gate-level references, and ``fig3`` reproduces
the paper's Figure 3 study (the former ``python -m repro.bench.fig3`` entry,
which remains as a shim).  ``run``/``sweep`` accept ``--stimulus`` — a
shorthand like ``markov:p01=0.2,p10=0.1``, inline JSON, ``@file``, or
``design`` for the registry entry's declared scenario — to drive a
:class:`~repro.stim.spec.StimulusSpec` instead of the built-in testbench.
Every subcommand can emit its result as a JSON artifact via ``--json``.

Serving (PR 8): ``serve`` runs the :mod:`repro.serve` job server — compatible
jobs submitted concurrently coalesce into shared lane batches — over HTTP or
stdio; ``submit``/``status`` are its thin clients, and ``cache`` inspects or
clears the on-disk result store (byte budget via ``REPRO_CACHE_MAX_MB``).
Stopping the server with Ctrl-C marks unfinished jobs interrupted, flushes
the job store, and exits 0.

Robustness (PR 7): ``run``/``sweep`` accept ``--timeout-s`` and
``--max-retries`` (per-task deadline and retry budget under the resilient
scheduler); ``sweep`` adds ``--on-error {raise,skip}`` (skip keeps healthy
results and exits 3 when any task failed) and ``--resume`` (recompute only
what the cache is missing).  Ctrl-C during a sweep persists completed
results, prints the partial summary, and exits 130.

Observability (PR 9): ``run``/``sweep`` accept ``--trace out.json`` — a
Chrome ``trace_event`` timeline of every :mod:`repro.obs` span, including
shard-worker spans merged from the pool; ``obs dump`` prints the metrics
registry (or scrapes a live server's ``GET /metrics``), ``obs reset`` zeroes
it, and ``obs summarize`` turns a trace file into a per-span timing table.

Power telemetry (PR 10): ``profile`` runs one estimate with windowed
per-component power collection and prints the hotspot report (top
components, peak windows, power-over-time sparkline); ``run``/``sweep``/
``submit`` accept ``--power-profile out.json`` (plus ``--profile-window N``)
to attach the same :class:`~repro.power.profile.PowerProfile` to any run and
write it as a JSON artifact.  With ``--trace``, per-window power lands on
the timeline as Chrome counter tracks.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional


def _parse_kernel_threads(value: str) -> Optional[int]:
    """``--kernel-threads`` values: an integer, or ``auto`` meaning None."""
    if value == "auto":
        return None
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        ) from None


def _add_common_run_arguments(parser: argparse.ArgumentParser) -> None:
    from repro.api.spec import BACKENDS, KERNEL_BACKENDS

    parser.add_argument("--max-cycles", type=int, default=None,
                        help="cycle budget (default: the testbench's own)")
    parser.add_argument("--backend", choices=BACKENDS, default="auto",
                        help="simulation backend (default auto; batch = lane path)")
    parser.add_argument("--kernel-backend", choices=KERNEL_BACKENDS, default="auto",
                        help="fused lane-kernel backend for batch execution "
                             "(native = C via cffi when a compiler exists, "
                             "numpy = fused NumPy pass, off = per-op dispatch)")
    parser.add_argument("--kernel-threads", type=_parse_kernel_threads,
                        default=None, metavar="N",
                        help="native-kernel worker threads across lane blocks "
                             "(an integer, or 'auto' = min(cores, lanes/128); "
                             "default: the REPRO_KERNEL_THREADS env or auto; "
                             "any count is bit-identical)")
    parser.add_argument("--stimulus", default=None, metavar="SPEC",
                        help="declarative stimulus instead of the built-in "
                             "testbench: kind[:k=v,...] shorthand, inline "
                             "JSON, @file, or 'design' for the registry "
                             "entry's declared scenario")
    parser.add_argument("--coefficient-bits", type=int, default=12,
                        help="instrumentation coefficient width (emulation engine)")
    parser.add_argument("--power-profile", metavar="PATH", default=None,
                        help="collect a windowed per-component power profile "
                             "and write it as a JSON artifact")
    parser.add_argument("--profile-window", type=int, default=None, metavar="N",
                        help="profile window width in cycles (default: 1 on "
                             "the software engines, the strobe period on "
                             "emulation)")
    parser.add_argument("--timeout-s", type=float, default=None, metavar="S",
                        help="per-task wall-clock deadline; a task past it is "
                             "killed and retried/failed (default: the "
                             "REPRO_TASK_TIMEOUT_S env, else none)")
    parser.add_argument("--max-retries", type=int, default=None, metavar="N",
                        help="retries per task after the first attempt, with "
                             "exponential backoff (default: the "
                             "REPRO_TASK_RETRIES env, else 0)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the result as a JSON artifact")


def parse_seed_list(tokens: List[str]) -> List[int]:
    """Expand ``--seeds`` tokens (ints and ``start:stop[:step]`` ranges).

    Duplicates in the expanded list are rejected downstream by
    :class:`~repro.api.spec.SweepSpec` — every seed is one independent
    lane/run, so a repeat would only re-estimate an identical result.
    """
    seeds: List[int] = []
    for token in tokens:
        if ":" in token:
            parts = token.split(":")
            try:
                numbers = [int(part) for part in parts]
            except ValueError:
                numbers = []
            if len(numbers) not in (2, 3) or (len(numbers) == 3 and numbers[2] == 0):
                raise ValueError(
                    f"bad seed range {token!r}; expected start:stop or "
                    f"start:stop:step with a nonzero step (python range "
                    f"semantics, stop excluded)"
                )
            expanded = list(range(*numbers))
            if not expanded:
                raise ValueError(
                    f"seed range {token!r} is empty (stop is excluded, like "
                    f"python's range)"
                )
            seeds.extend(expanded)
        else:
            try:
                seeds.append(int(token))
            except ValueError:
                raise ValueError(
                    f"bad seed {token!r}; expected an integer or a "
                    f"start:stop[:step] range"
                ) from None
    return seeds


def _resolve_stimulus(args: argparse.Namespace, designs: List[str]):
    """The ``--stimulus`` argument as a StimulusSpec (or None)."""
    if not args.stimulus:
        return None
    from repro.stim import parse_stimulus

    if args.stimulus == "design":
        if len(designs) != 1:
            raise ValueError(
                "--stimulus design needs exactly one design (each registry "
                "entry declares its own scenario)"
            )
        from repro.designs.registry import get

        return get(designs[0]).make_stimulus_spec()
    # run/sweep default the shorthand's cycle count to their --max-cycles;
    # the stim subcommand has no such flag (its --cycles overrides later)
    default_cycles = getattr(args, "max_cycles", None) or 256
    return parse_stimulus(args.stimulus, default_cycles=default_cycles)


def _design_names() -> List[str]:
    from repro.designs.registry import all_designs

    return sorted(all_designs())


def _write_json(path: Optional[str], payload: dict) -> None:
    if not path:
        return
    with open(path, "w") as handle:
        json.dump(payload, handle, sort_keys=True, indent=2)
    print(f"wrote {path}")


def _write_profile_json(path: Optional[str], payload: dict) -> None:
    """Write a ``--power-profile PATH`` artifact (no-op without the flag)."""
    if not path:
        return
    with open(path, "w") as handle:
        json.dump(payload, handle, sort_keys=True, indent=2)
    print(f"wrote power profile {path}")


def _traced(args: argparse.Namespace, body):
    """Run ``body`` with span tracing when ``--trace PATH`` was given.

    Tracing is enabled before the work starts and the buffered spans are
    written as one Chrome ``trace_event`` JSON afterwards — also on error
    and on Ctrl-C, so an interrupted sweep still leaves a loadable trace.
    """
    trace_path = getattr(args, "trace", None)
    if not trace_path:
        return body()
    from repro import obs

    obs.enable(tracing=True)
    try:
        return body()
    finally:
        n_spans = obs.write_chrome_trace(trace_path)
        print(f"wrote {trace_path} ({n_spans} spans; open in Perfetto or "
              f"chrome://tracing)")


# ------------------------------------------------------------------ run
def _cmd_run(args: argparse.Namespace) -> int:
    return _traced(args, lambda: _run_body(args))


def _run_body(args: argparse.Namespace) -> int:
    from repro.api import RunSpec, estimate

    spec = RunSpec(
        design=args.design,
        engine=args.engine,
        seed=args.seed,
        stimulus=_resolve_stimulus(args, [args.design]),
        max_cycles=args.max_cycles,
        backend=args.backend,
        kernel_backend=args.kernel_backend,
        kernel_threads=args.kernel_threads,
        coefficient_bits=args.coefficient_bits,
        workload_cycles=args.workload_cycles,
        compare_to_rtl=args.compare_to_rtl,
        power_profile=bool(args.power_profile),
        profile_window=args.profile_window,
        timeout_s=args.timeout_s,
        max_retries=args.max_retries,
    )
    result = estimate(spec)
    print(result.report.table(n=args.top))
    print()
    print(result.summary())
    if result.metadata.get("device"):
        print(f"  device {result.metadata['device']} "
              f"@ {result.metadata['emulation_clock_mhz']:.1f} MHz, "
              f"LUT overhead {result.metadata['lut_overhead']:.1%}")
    if result.profile is not None:
        print(f"  profile: {result.profile.n_windows} windows x "
              f"{result.profile.window_cycles} cycles, peak "
              f"{result.profile.peak_power_mw():.4f} mW")
        _write_profile_json(args.power_profile, result.profile.to_dict())
    _write_json(args.json, result.to_dict())
    return 0


# -------------------------------------------------------------- profile
def _cmd_profile(args: argparse.Namespace) -> int:
    return _traced(args, lambda: _profile_body(args))


def _profile_body(args: argparse.Namespace) -> int:
    from repro.api import RunSpec, estimate

    spec = RunSpec(
        design=args.design,
        engine=args.engine,
        seed=args.seed,
        stimulus=_resolve_stimulus(args, [args.design]),
        max_cycles=args.max_cycles,
        backend=args.backend,
        kernel_backend=args.kernel_backend,
        kernel_threads=args.kernel_threads,
        coefficient_bits=args.coefficient_bits,
        power_profile=True,
        profile_window=args.profile_window,
        timeout_s=args.timeout_s,
        max_retries=args.max_retries,
    )
    result = estimate(spec)
    profile = result.profile
    if profile is None:  # defensive: every engine path populates it
        raise ValueError(f"engine {spec.engine!r} produced no power profile")
    print(profile.table(top_k=args.top))
    _write_profile_json(args.power_profile, profile.to_dict())
    _write_json(args.json, {
        "summary": result.summary(),
        "hotspots": profile.hotspots(top_k=args.top),
        "profile": profile.to_dict(),
    })
    return 0


# ---------------------------------------------------------------- sweep
def _cmd_sweep(args: argparse.Namespace) -> int:
    return _traced(args, lambda: _sweep_body(args))


def _sweep_body(args: argparse.Namespace) -> int:
    from repro.api import SweepSpec, sweep
    from repro.api.sweep import SweepInterrupted

    spec = SweepSpec(
        designs=tuple(args.designs),
        engines=tuple(args.engines),
        seeds=tuple(parse_seed_list(args.seeds)),
        stimulus=_resolve_stimulus(args, list(args.designs)),
        max_cycles=args.max_cycles,
        backend=args.backend,
        kernel_backend=args.kernel_backend,
        kernel_threads=args.kernel_threads,
        coefficient_bits=args.coefficient_bits,
        n_workers=args.workers,
        cache_dir=args.cache_dir or None,
        power_profile=bool(args.power_profile),
        profile_window=args.profile_window,
        timeout_s=args.timeout_s,
        max_retries=args.max_retries,
        on_error=args.on_error,
    )
    try:
        result = sweep(spec, resume=args.resume)
    except SweepInterrupted as interrupt:
        # completed results are already persisted; report them and exit with
        # the conventional SIGINT code so scripts can tell "stopped" from
        # "failed" — `sweep --resume` picks up from here
        result = interrupt.partial
        print(result.summary())
        _write_json(args.json, result.to_dict())
        print("interrupted — completed results persisted; rerun with "
              "--resume to finish", file=sys.stderr)
        return 130
    print(result.summary())
    if args.power_profile:
        # one artifact for the whole grid, keyed per run
        profiles = {
            f"{r.spec.design}[{r.spec.engine}] seed={r.spec.seed}":
                r.profile.to_dict()
            for r in result.results if r.profile is not None
        }
        _write_profile_json(args.power_profile, {"profiles": profiles})
    _write_json(args.json, result.to_dict())
    # on_error=skip with losses: partial success gets its own exit code
    return 0 if result.ok else 3


# ----------------------------------------------------------------- stim
def _cmd_stim(args: argparse.Namespace) -> int:
    from repro.stim import CompiledStimulus

    spec = _resolve_stimulus(args, [args.design] if args.design else [])
    if spec is None:
        raise ValueError("stim needs --stimulus (shorthand, JSON, @file or "
                         "'design' with --design)")
    if args.cycles:
        spec = spec.replace(n_cycles=args.cycles)
    if args.seed is not None:
        spec = spec.replace(seed=args.seed)

    if args.design:
        from repro.designs.registry import build_flat

        module = build_flat(args.design)
        widths = {
            name: port.width
            for name, port in module.ports.items()
            if port.is_input
        }
    else:
        # no design: preview against the named ports (default width 16)
        widths = {name: 16 for name, _ in spec.ports} or {"data": 16}

    seeds = [spec.seed + lane for lane in range(args.lanes)]
    compiled = CompiledStimulus(spec, widths, seeds)
    tensor = compiled.tensor()
    print(spec.describe())
    print()
    statistics = compiled.port_statistics(tensor)
    print(f"{'port':16s} {'width':>5s} {'toggles/bit/cyc':>15s} {'nonzero duty':>12s}")
    for row in statistics:
        print(f"{row['port']:16s} {row['width']:5d} {row['toggle_rate']:15.3f} "
              f"{row['nonzero_duty']:12.1%}")
    n_preview = min(args.preview, spec.n_cycles)
    if n_preview:
        preview = tensor[:n_preview]
        print()
        print(f"first {n_preview} cycles (lane 0 of {args.lanes}):")
        header = " ".join(f"{name:>10s}" for name in compiled.port_names)
        print(f"{'cycle':>5s} {header}")
        for cycle in range(n_preview):
            row = " ".join(
                f"{int(preview[cycle, p, 0]):>10d}"
                for p in range(len(compiled.port_names))
            )
            print(f"{cycle:5d} {row}")
    _write_json(args.json, {
        "spec": spec.to_dict(),
        "design": args.design,
        "n_lanes": args.lanes,
        "ports": statistics,
    })
    return 0


# --------------------------------------------------------- characterize
def _characterize_components(names: Optional[List[str]]):
    from repro.netlist.components import Adder, Comparator, LogicOp, Multiplier

    builders = {
        "adder8": lambda: Adder("adder8", 8),
        "adder16": lambda: Adder("adder16", 16),
        "mult8": lambda: Multiplier("mult8", 8),
        "cmp16": lambda: Comparator("cmp16", 16),
        "xor16": lambda: LogicOp("xor16", "xor", 16),
    }
    selected = names if names else sorted(builders)
    unknown = sorted(set(selected) - set(builders))
    if unknown:
        raise SystemExit(
            f"unknown component(s) {', '.join(unknown)}; "
            f"choose from {', '.join(sorted(builders))}"
        )
    return [(name, builders[name]()) for name in selected]


def _cmd_characterize(args: argparse.Namespace) -> int:
    from repro.power import CharacterizationEngine, characterize_many

    engine = CharacterizationEngine(n_pairs=args.pairs, seed=args.seed,
                                    batch=not args.no_batch,
                                    kernel_backend=args.kernel_backend)
    selected = _characterize_components(args.components)
    results = characterize_many([component for _, component in selected],
                                engine=engine, n_workers=args.workers)
    rows = []
    print(f"{'component':12s} {'R^2':>7s} {'NRMSE':>7s} {'mean E (fJ)':>12s} "
          f"{'max |err| (fJ)':>15s}")
    for (name, _), result in zip(selected, results):
        metrics = result.metrics
        print(f"{name:12s} {metrics.r_squared:7.3f} {metrics.nrmse:7.3f} "
              f"{metrics.mean_energy_fj:12.1f} {metrics.max_abs_error_fj:15.1f}")
        rows.append({
            "component": name,
            "n_samples": metrics.n_samples,
            "r_squared": metrics.r_squared,
            "nrmse": metrics.nrmse,
            "mean_energy_fj": metrics.mean_energy_fj,
            "max_abs_error_fj": metrics.max_abs_error_fj,
        })
    _write_json(args.json, {"n_pairs": args.pairs, "seed": args.seed,
                            "workers": args.workers, "models": rows})
    return 0


# ---------------------------------------------------------------- cache
def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.bench.cache import ResultCache

    namespace_given = args.namespace is not None
    cache = ResultCache(args.cache_dir, namespace=args.namespace or "estimate")
    if args.action == "stats":
        stats = cache.stats()
        budget = (
            f"{stats['max_bytes'] / (1024 * 1024):.1f} MiB"
            if stats["max_bytes"] is not None
            else "unbounded (set REPRO_CACHE_MAX_MB)"
        )
        print(f"cache directory   {stats['directory']}")
        print(f"entries           {stats['entries']} "
              f"({stats['namespace_entries']} in namespace "
              f"{stats['namespace']!r})")
        print(f"bytes             {stats['bytes']:,} "
              f"({stats['bytes'] / (1024 * 1024):.2f} MiB)")
        print(f"byte budget       {budget}")
        print(f"corrupt entries   {stats['corrupt_quarantined']} quarantined")
        from repro import obs

        session = {
            "hits": obs.REGISTRY.counter(
                "repro_cache_hits_total", "").value(namespace=cache.namespace),
            "misses": obs.REGISTRY.counter(
                "repro_cache_misses_total", "").value(namespace=cache.namespace),
            "evictions": obs.REGISTRY.counter(
                "repro_cache_evictions_total", "").value(namespace=cache.namespace),
            "corruptions": obs.REGISTRY.counter(
                "repro_cache_corruptions_total", "").value(namespace=cache.namespace),
        }
        print(f"session counters  {session['hits']:.0f} hits, "
              f"{session['misses']:.0f} misses, "
              f"{session['evictions']:.0f} evicted, "
              f"{session['corruptions']:.0f} corrupt "
              f"(this process, namespace {cache.namespace!r})")
        stats = dict(stats)
        stats["session_counters"] = session
        _write_json(args.json, stats)
        return 0
    # clear: an explicit --namespace restricts; default clears every entry
    removed = cache.clear(all_namespaces=not namespace_given)
    scope = args.namespace if namespace_given else "all namespaces"
    print(f"cleared {removed} cache entries ({scope}) from {cache.directory}")
    return 0


# ------------------------------------------------------------------ obs
def _cmd_obs(args: argparse.Namespace) -> int:
    from repro import obs

    if args.obs_action == "dump":
        if args.url:
            import urllib.error
            import urllib.request

            try:
                with urllib.request.urlopen(
                    f"{args.url}/metrics", timeout=30.0
                ) as response:
                    text = response.read().decode()
            except (urllib.error.URLError, OSError) as error:
                raise ValueError(
                    f"cannot reach {args.url}/metrics: "
                    f"{getattr(error, 'reason', error)} — is "
                    f"`python -m repro serve` running?"
                ) from None
        else:
            text = obs.render_prometheus()
        print(text, end="")
        return 0
    if args.obs_action == "reset":
        summary = obs.reset()
        print(f"reset {summary['metrics_reset']} metrics, dropped "
              f"{summary['spans_dropped']} buffered spans")
        return 0
    # summarize: aggregate a --trace artifact into a per-span-name table
    try:
        summary = obs.summarize_trace(args.trace)
    except OSError as error:
        raise ValueError(f"cannot read trace {args.trace}: {error}") from None
    print(f"{args.trace}: {summary['n_spans']} spans across "
          f"{summary['n_processes']} process(es), "
          f"{summary['wall_ms']:.1f} ms wall")
    print(f"{'span':24s} {'count':>6s} {'total ms':>10s} {'mean ms':>9s} "
          f"{'max ms':>9s}  pids")
    for name, row in summary["by_name"].items():
        pids = ",".join(str(pid) for pid in row["pids"])
        print(f"{name:24s} {row['count']:6d} {row['total_ms']:10.2f} "
              f"{row['mean_ms']:9.3f} {row['max_ms']:9.3f}  {pids}")
    _write_json(args.json, summary)
    return 0


# ---------------------------------------------------------------- serve
def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.serve import HttpFrontend, PowerServer, run_stdio

    async def _serve() -> None:
        server = PowerServer(
            cache_dir=args.cache_dir or None,
            coalesce_window_s=args.coalesce_window,
        )
        await server.start()
        # graceful shutdown on Ctrl-C and on a supervisor's SIGTERM alike:
        # unfinished jobs get marked interrupted and flushed (explicit
        # handlers also cover backgrounded servers, whose inherited SIGINT
        # disposition would otherwise be "ignore")
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # platforms without loop signal handlers
        try:
            if args.stdio:
                stdio = asyncio.ensure_future(run_stdio(server))
                stopped = asyncio.ensure_future(stop.wait())
                await asyncio.wait(
                    {stdio, stopped}, return_when=asyncio.FIRST_COMPLETED
                )
                for task in (stdio, stopped):
                    task.cancel()
            else:
                http = HttpFrontend(server, host=args.host, port=args.port)
                await http.start()
                print(f"serving on {http.url} "
                      f"(cache: {args.cache_dir or 'in-memory'}; Ctrl-C stops)",
                      flush=True)
                try:
                    await stop.wait()
                finally:
                    await http.stop()
        finally:
            await server.stop()
            stats = server.stats()
            print(f"served {stats['jobs_submitted']} jobs "
                  f"({stats['coalesced_jobs']} coalesced into shared batches, "
                  f"{stats['cache_hits']} cache hits)", flush=True)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        # Ctrl-C is the intended way to stop: unfinished jobs were marked
        # interrupted and flushed to the job store before the loop closed
        pass
    return 0


def _http_json(url: str, payload: Optional[dict] = None, timeout: float = 600.0):
    """(status, JSON body) of one request; connection errors become ValueError."""
    import urllib.error
    import urllib.request

    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        url, data=data, method="POST" if data is not None else "GET",
        headers={"Content-Type": "application/json"} if data is not None else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        try:
            body = json.load(error)
        except ValueError:
            body = {"error": str(error.reason)}
        return error.code, body
    except (urllib.error.URLError, OSError) as error:
        raise ValueError(
            f"cannot reach server at {url}: "
            f"{getattr(error, 'reason', error)} — is `python -m repro serve` "
            f"running?"
        ) from None


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.api import RunSpec

    spec = RunSpec(
        design=args.design,
        engine=args.engine,
        seed=args.seed,
        stimulus=_resolve_stimulus(args, [args.design]),
        max_cycles=args.max_cycles,
        backend=args.backend,
        kernel_backend=args.kernel_backend,
        kernel_threads=args.kernel_threads,
        coefficient_bits=args.coefficient_bits,
        compare_to_rtl=args.compare_to_rtl,
        power_profile=bool(args.power_profile),
        profile_window=args.profile_window,
        timeout_s=args.timeout_s,
        max_retries=args.max_retries,
    )
    status, body = _http_json(f"{args.url}/jobs", payload=spec.to_dict())
    if status != 202:
        print(f"error: submit rejected ({status}): {body.get('error')}",
              file=sys.stderr)
        return 2
    job_id = body["job_id"]
    print(f"submitted {job_id}")
    if args.no_wait:
        _write_json(args.json, {"job_id": job_id})
        return 0
    status, result = _http_json(f"{args.url}/jobs/{job_id}/result")
    if status != 200:
        error = result.get("error") or {}
        print(f"job {job_id} {result.get('state', 'failed')}: "
              f"{error.get('error_type')}: {error.get('message')}",
              file=sys.stderr)
        _write_json(args.json, result)
        return 3
    report = result["report"]
    metadata = result.get("metadata") or {}
    group = metadata.get("group_size", 1)
    shared = f", lane of {group}" if group and group > 1 else ""
    print(f"{report['design']}: {report['average_power_mw']:.4f} mW over "
          f"{report['cycles']} cycles (job {job_id}{shared})")
    if args.power_profile and result.get("profile") is not None:
        _write_profile_json(args.power_profile, result["profile"])
    _write_json(args.json, result)
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    if args.job_id:
        status, record = _http_json(f"{args.url}/jobs/{args.job_id}")
        if status != 200:
            print(f"error: {record.get('error')}", file=sys.stderr)
            return 2
        spec = record["spec"]
        seed = f" seed={spec['seed']}" if spec.get("seed") is not None else ""
        print(f"{record['job_id']}  {spec['design']}[{spec['engine']}]{seed}: "
              f"{record['state']}")
        for event in record.get("events") or []:
            detail = event.get("detail") or {}
            facts = ", ".join(f"{k}={v}" for k, v in sorted(detail.items())
                              if v not in (None, {}, []))
            print(f"  {event['seq']:2d} {event['state']:11s} {facts}")
        if record.get("error"):
            print(f"  error: {record['error'].get('error_type')}: "
                  f"{record['error'].get('message')}")
        _write_json(args.json, record)
        return 0
    status, jobs = _http_json(f"{args.url}/jobs")
    stats_status, stats = _http_json(f"{args.url}/stats")
    print(f"{'job':16s} {'design':14s} {'engine':9s} {'seed':>5s} "
          f"{'state':11s} {'group':>5s}")
    for job in jobs.get("jobs") or []:
        seed = job["seed"] if job["seed"] is not None else "-"
        group = job["group_size"] or "-"
        state = job["state"] + (" (cached)" if job.get("cached") else "")
        print(f"{job['job_id']:16s} {job['design']:14s} {job['engine']:9s} "
              f"{seed!s:>5s} {state:11s} {group!s:>5s}")
    if stats_status == 200:
        print(f"\n{stats['jobs_submitted']} submitted, "
              f"{stats['coalesced_jobs']} coalesced, "
              f"{stats['cache_hits']} cache hits, "
              f"{stats['groups']} groups, "
              f"{stats['program_builds']} program builds, "
              f"{stats['kernel_builds']} kernel builds")
    _write_json(args.json, {"jobs": jobs.get("jobs"), "stats": stats})
    return 0


# ----------------------------------------------------------------- main
def build_parser() -> argparse.ArgumentParser:
    from repro.api.spec import ENGINES, KERNEL_BACKENDS

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Unified power-estimation CLI (Coburn/Ravi/Raghunathan, DATE'05 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="one estimation run through any engine")
    run.add_argument("--design", required=True, choices=_design_names())
    run.add_argument("--engine", choices=ENGINES, default="rtl")
    run.add_argument("--seed", type=int, default=None,
                     help="stimulus seed (default: the design's standard stimulus)")
    run.add_argument("--workload-cycles", type=int, default=None,
                     help="nominal workload for the emulation time model")
    run.add_argument("--compare-to-rtl", action="store_true",
                     help="attach accuracy vs a software-RTL reference run")
    run.add_argument("--top", type=int, default=10,
                     help="component rows to print in the power table")
    run.add_argument("--trace", metavar="PATH", default=None,
                     help="write the run's spans as a Chrome trace_event "
                          "JSON (open in Perfetto or chrome://tracing)")
    _add_common_run_arguments(run)
    run.set_defaults(func=_cmd_run)

    prof = sub.add_parser("profile", help="one run with windowed power "
                                          "telemetry: hotspot report + "
                                          "power-over-time profile")
    prof.add_argument("--design", required=True, choices=_design_names())
    prof.add_argument("--engine", choices=ENGINES, default="rtl")
    prof.add_argument("--seed", type=int, default=None,
                      help="stimulus seed (default: the design's standard "
                           "stimulus)")
    prof.add_argument("--top", type=int, default=8,
                      help="hotspot components / peak windows to report")
    prof.add_argument("--trace", metavar="PATH", default=None,
                      help="write spans plus per-window power counter events "
                           "as a Chrome trace_event JSON (the counters render "
                           "as a power-over-time track in Perfetto)")
    _add_common_run_arguments(prof)
    prof.set_defaults(func=_cmd_profile)

    swp = sub.add_parser("sweep", help="(design x engine x seed) sweep: "
                                       "batch lanes + shard pool + cache")
    swp.add_argument("--designs", nargs="+", required=True, choices=_design_names())
    swp.add_argument("--engines", nargs="+", choices=ENGINES, default=["rtl"])
    swp.add_argument("--seeds", nargs="+", default=["0", "1"], metavar="SEED",
                     help="stimulus seeds (one RTL lane per seed): integers "
                          "and start:stop[:step] ranges, e.g. --seeds 0:64; "
                          "duplicates are rejected")
    swp.add_argument("--workers", type=int, default=1,
                     help="shard-pool worker processes (1 = serial)")
    swp.add_argument("--cache-dir", default="",
                     help="on-disk result cache directory ('' disables caching)")
    swp.add_argument("--on-error", choices=("raise", "skip"), default="raise",
                     help="task-failure policy: raise = abort the sweep with "
                          "the task's exception; skip = record a structured "
                          "failure, keep the healthy results, exit 3")
    swp.add_argument("--resume", action="store_true",
                     help="resume a failed/interrupted sweep from its cache "
                          "(requires --cache-dir): completed tasks are cache "
                          "hits, only missing/failed tasks recompute")
    swp.add_argument("--trace", metavar="PATH", default=None,
                     help="write the sweep's spans — including shard-worker "
                          "spans, merged onto one timeline — as a Chrome "
                          "trace_event JSON (Perfetto / chrome://tracing)")
    _add_common_run_arguments(swp)
    swp.set_defaults(func=_cmd_sweep)

    stim = sub.add_parser("stim", help="describe & preview a stimulus spec "
                                       "(ports, activity stats, first cycles)")
    stim.add_argument("--stimulus", required=True, metavar="SPEC",
                      help="kind[:k=v,...] shorthand, inline JSON, @file, or "
                           "'design' (with --design) for the registry scenario")
    stim.add_argument("--design", choices=_design_names(), default=None,
                      help="resolve port widths against this design's inputs")
    stim.add_argument("--cycles", type=int, default=None,
                      help="override the spec's n_cycles")
    stim.add_argument("--lanes", type=int, default=4,
                      help="lanes to compile for the activity statistics")
    stim.add_argument("--seed", type=int, default=None,
                      help="override the spec's base seed")
    stim.add_argument("--preview", type=int, default=8,
                      help="cycles of lane-0 values to print (0 disables)")
    stim.add_argument("--json", metavar="PATH", default=None,
                      help="write the spec + port stats as a JSON artifact")
    stim.set_defaults(func=_cmd_stim)

    cha = sub.add_parser("characterize",
                         help="fit macromodels against gate-level references")
    cha.add_argument("--components", nargs="*", default=None,
                     help="subset of the standard component set")
    cha.add_argument("--pairs", type=int, default=150,
                     help="training vector pairs per component")
    cha.add_argument("--seed", type=int, default=2005)
    cha.add_argument("--no-batch", action="store_true",
                     help="use the scalar (non-lane) characterization path")
    cha.add_argument("--kernel-backend", default="auto",
                     choices=KERNEL_BACKENDS,
                     help="fused settle kernel for the gate-level reference "
                          "simulation (native = C via cffi)")
    cha.add_argument("--workers", type=int, default=1,
                     help="shard-pool worker processes, one warm engine per "
                          "worker (1 = serial)")
    cha.add_argument("--json", metavar="PATH", default=None,
                     help="write fit metrics as a JSON artifact")
    cha.set_defaults(func=_cmd_characterize)

    srv = sub.add_parser("serve", help="run the coalescing power-estimation "
                                       "job server (HTTP or stdio)")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8350,
                     help="HTTP port (0 = an ephemeral port, printed on start)")
    srv.add_argument("--cache-dir", default="",
                     help="persistent job + result store; shares the sweep "
                          "runner's result cache ('' = in-memory)")
    srv.add_argument("--coalesce-window", type=float, default=0.05, metavar="S",
                     help="seconds the dispatcher waits after a submission "
                          "so concurrent compatible jobs merge into one "
                          "shared lane batch")
    srv.add_argument("--stdio", action="store_true",
                     help="serve JSON-line operations on stdin/stdout "
                          "instead of HTTP")
    srv.set_defaults(func=_cmd_serve)

    sbm = sub.add_parser("submit", help="submit one run to a serve instance "
                                        "and (by default) wait for the result")
    sbm.add_argument("--url", default="http://127.0.0.1:8350",
                     help="base URL of the serve instance")
    sbm.add_argument("--design", required=True, choices=_design_names())
    sbm.add_argument("--engine", choices=ENGINES, default="rtl")
    sbm.add_argument("--seed", type=int, default=None,
                     help="stimulus seed (default: the design's standard stimulus)")
    sbm.add_argument("--compare-to-rtl", action="store_true",
                     help="attach accuracy vs a software-RTL reference run")
    sbm.add_argument("--no-wait", action="store_true",
                     help="print the job id and return immediately")
    _add_common_run_arguments(sbm)
    sbm.set_defaults(func=_cmd_submit)

    sta = sub.add_parser("status", help="job list, job detail, or server "
                                        "stats of a serve instance")
    sta.add_argument("job_id", nargs="?", default=None,
                     help="show one job's record and event history "
                          "(default: list all jobs + server stats)")
    sta.add_argument("--url", default="http://127.0.0.1:8350",
                     help="base URL of the serve instance")
    sta.add_argument("--json", metavar="PATH", default=None,
                     help="write the response as a JSON artifact")
    sta.set_defaults(func=_cmd_status)

    cache = sub.add_parser("cache", help="inspect or clear an on-disk result "
                                         "cache directory")
    cache.add_argument("action", choices=("stats", "clear"),
                       help="stats = entries/bytes/budget/corruption; "
                            "clear = delete cache entries")
    cache.add_argument("--cache-dir", required=True,
                       help="the cache directory (as passed to sweep/serve)")
    cache.add_argument("--namespace", default=None,
                       help="cache namespace: stats counts it separately "
                            "(default estimate); clear restricts to it when "
                            "given (default: clear all namespaces)")
    cache.add_argument("--json", metavar="PATH", default=None,
                       help="write the stats as a JSON artifact")
    cache.set_defaults(func=_cmd_cache)

    obs_p = sub.add_parser("obs", help="observability: dump/reset the metrics "
                                       "registry, summarize a --trace file")
    obs_sub = obs_p.add_subparsers(dest="obs_action", required=True)
    obs_dump = obs_sub.add_parser(
        "dump", help="print metrics in Prometheus text exposition format")
    obs_dump.add_argument("--url", default=None,
                          help="scrape GET <url>/metrics of a live serve "
                               "instance instead of this process's registry")
    obs_sub.add_parser("reset", help="zero every metric in this process's "
                                     "registry and drop buffered spans")
    obs_sum = obs_sub.add_parser(
        "summarize", help="aggregate a Chrome trace JSON (from --trace) into "
                          "a per-span-name timing table")
    obs_sum.add_argument("trace", help="trace_event JSON path")
    obs_sum.add_argument("--json", metavar="PATH", default=None,
                         help="write the summary as a JSON artifact")
    obs_p.set_defaults(func=_cmd_obs)

    # listed for `python -m repro --help` only: every real fig3/gate
    # invocation — including `--help` — is forwarded to the module's own
    # parser by main() before argparse runs
    sub.add_parser("fig3", add_help=False,
                   help="the paper's Figure 3 study (sharded + cached); "
                        "all arguments forward to repro.bench.fig3")
    sub.add_parser("gate", add_help=False,
                   help="gate fresh BENCH_*.json metrics against committed "
                        "baselines; all arguments forward to repro.bench.gate")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["fig3"]:
        # forward everything after `fig3` — including --help — to the
        # study's own parser (argparse REMAINDER does not reliably pass
        # optionals through sub-parsers)
        from repro.bench.fig3 import main as fig3_main

        return fig3_main(argv[1:])
    if argv[:1] == ["gate"]:
        from repro.bench.gate import main as gate_main

        return gate_main(argv[1:])
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (KeyError, ValueError) as error:
        # registry lookups and spec validation raise with actionable messages
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # a Ctrl-C outside the sweep runner's graceful path (SweepInterrupted
        # is handled — with persistence — inside _cmd_sweep)
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
