"""Fused lane-kernel compiler: one call per cycle phase instead of one per op.

The batch backend's per-cycle cost is dominated by NumPy per-op dispatch —
every fused expression pays ~1 µs of interpreter + dispatch overhead per
cycle regardless of lane count.  This package lifts a module's whole settle
and clock-edge phases into *one kernel each* over the ``(n_slots, n_lanes)``
store:

1. :mod:`repro.sim.kernels.ir` extracts a small typed expression IR from the
   generated lane program (slot/state/memory access + a closed operator set),
2. :mod:`repro.sim.kernels.native` prints the IR as C — a single per-lane
   loop of straight-line scalar code — compiled via the system C compiler and
   called through cffi (cached per source hash), and
3. :mod:`repro.sim.kernels.numpy_backend` prints the same IR as one fused,
   exec-compiled NumPy pass — the portable fallback when no compiler exists.

Backend selection (``KERNEL_BACKENDS``):

* ``"auto"``   — the NumPy kernel when the module lowers, else plain batch,
* ``"native"`` — the C kernel; falls back to the NumPy kernel without a
  toolchain, and to plain batch when the module cannot lower,
* ``"numpy"``  — the NumPy kernel, never invoking a compiler,
* ``"off"``    — the plain batch path (per-op NumPy dispatch).

The environment variable ``REPRO_KERNEL_BACKEND`` sets the default for every
:class:`~repro.sim.batch.BatchSimulator` that is not given an explicit
``kernel_backend``.  Kernels are bit-identical to the batch path by
construction — extraction refuses anything it cannot express, so a module
either lowers completely or runs exactly as before.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple, Union

from repro import obs
from repro.sim.kernels.ir import KernelIR, KernelUnsupportedError, extract_ir
from repro.sim.kernels.native import (
    BLOCK_LANES,
    NativeKernel,
    NativeToolchainError,
    find_compiler,
    threading_mode,
)
from repro.sim.kernels.numpy_backend import NumpyKernel

#: kernel backends selectable per simulator / RunSpec / CLI
KERNEL_BACKENDS: Tuple[str, ...] = ("auto", "native", "numpy", "off")

#: environment variable providing the session-wide default backend
KERNEL_BACKEND_ENV = "REPRO_KERNEL_BACKEND"

#: environment variable providing the session-wide default worker count
KERNEL_THREADS_ENV = "REPRO_KERNEL_THREADS"

#: process-lifetime count of kernel compilations (every
#: :func:`compile_kernel` call — per-program caching happens in the caller);
#: the :mod:`repro.serve` coalescer reads this to prove N merged jobs shared
#: one kernel build.  Lives in the :mod:`repro.obs` registry (labelled by
#: backend); ``KERNEL_BUILD_COUNT`` stays readable as a module attribute via
#: :func:`__getattr__` below.
_KERNEL_BUILDS = obs.counter(
    "repro_kernel_builds_total",
    "Fused lane-kernel compilations by backend",
    essential=True,
)


def __getattr__(name: str) -> int:
    if name == "KERNEL_BUILD_COUNT":
        return int(_KERNEL_BUILDS.total())
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def resolve_kernel_backend(requested: Optional[str] = None) -> str:
    """Validate and default the requested kernel backend.

    ``None`` reads ``REPRO_KERNEL_BACKEND`` (defaulting to ``auto``); any
    explicit value must be one of :data:`KERNEL_BACKENDS`.
    """
    if requested is None:
        requested = os.environ.get(KERNEL_BACKEND_ENV) or "auto"
    if requested not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown kernel backend {requested!r}; expected one of "
            f"{', '.join(KERNEL_BACKENDS)}"
        )
    return requested


def resolve_kernel_threads(
    requested: Optional[Union[int, str]] = None,
    n_lanes: Optional[int] = None,
) -> int:
    """Validate and default the kernel worker count.

    ``None`` reads ``REPRO_KERNEL_THREADS`` (defaulting to ``auto``).
    ``"auto"`` means ``min(cores, n_lanes // BLOCK_LANES)`` clamped to at
    least 1 — one worker per 128-lane block, never more than the host has
    cores.  Lane blocks are independent, so any resolved count is
    bit-identical to single-threaded execution.
    """
    if requested is None:
        requested = os.environ.get(KERNEL_THREADS_ENV, "").strip() or "auto"
    if isinstance(requested, str):
        if requested == "auto":
            cores = os.cpu_count() or 1
            blocks = max(1, (n_lanes or 0) // BLOCK_LANES)
            return max(1, min(cores, blocks))
        try:
            requested = int(requested)
        except ValueError:
            raise ValueError(
                f"kernel thread count must be a positive integer or 'auto', "
                f"got {requested!r}"
            ) from None
    if requested < 1:
        raise ValueError(
            f"kernel thread count must be >= 1, got {requested}"
        )
    return int(requested)


LaneKernel = Union[NativeKernel, NumpyKernel]


def compile_kernel(ir: KernelIR, n_lanes: int, backend: str) -> LaneKernel:
    """Compile extracted IR with the chosen backend (``native``/``numpy``/``auto``).

    ``native`` degrades gracefully to the NumPy kernel when the host has no C
    toolchain (or the compile fails); ``auto`` means the NumPy kernel.  Raises
    :class:`ValueError` for ``off`` — the caller decides what "no kernel"
    means.
    """
    from repro.resilience.faults import maybe_inject

    maybe_inject("kernel")
    _KERNEL_BUILDS.inc(backend=backend)
    with obs.span("kernel.compile", backend=backend, n_lanes=n_lanes):
        if backend == "native":
            try:
                return NativeKernel(ir, n_lanes)
            except NativeToolchainError:
                return NumpyKernel(ir, n_lanes)
        if backend in ("numpy", "auto"):
            return NumpyKernel(ir, n_lanes)
        raise ValueError(f"cannot compile a kernel for backend {backend!r}")


__all__ = [
    "BLOCK_LANES",
    "KERNEL_BACKENDS",
    "KERNEL_BACKEND_ENV",
    "KERNEL_THREADS_ENV",
    "KernelIR",
    "KernelUnsupportedError",
    "LaneKernel",
    "NativeKernel",
    "NativeToolchainError",
    "NumpyKernel",
    "compile_kernel",
    "extract_ir",
    "find_compiler",
    "resolve_kernel_backend",
    "resolve_kernel_threads",
    "threading_mode",
]
