"""Gate-level power estimation baseline.

The paper's introduction notes that transistor/gate-level power estimation is
"much (10X to 100X) slower" than RTL power estimation.  This estimator makes
that baseline concrete: every mappable combinational RTL component is expanded
to gates, and during simulation each observed input vector is re-simulated at
the gate level to count real per-net toggles and convert them to energy.
Components without a gate mapping (registers, memories, FSMs) fall back to
their RTL macromodels, which keeps the comparison apples-to-apples for the
storage part of a design.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.gates.gate_power import GatePowerCalculator
from repro.gates.gatesim import GateLevelSimulator
from repro.gates.techmap import TechnologyMapper
from repro.netlist.module import Module
from repro.power.library import PowerModelLibrary, build_seed_library
from repro.power.profile import PowerProfile, ProfileConfig, WindowedEnergyCollector
from repro.power.report import ComponentPower, PowerReport
from repro.power.technology import CB130M_TECHNOLOGY, Technology
from repro.sim.engine import SimulationObserver, Simulator
from repro.sim.testbench import Testbench


class _GateLevelObserver(SimulationObserver):
    def __init__(
        self,
        estimator: "GateLevelPowerEstimator",
        keep_cycle_trace: bool = True,
        collector: Optional[WindowedEnergyCollector] = None,
    ) -> None:
        self.estimator = estimator
        self.keep_cycle_trace = keep_cycle_trace
        self.collector = collector
        self.energy_by_component: Dict[str, float] = {}
        self.cycle_energy: List[float] = []
        self.peak_cycle_energy_fj = 0.0
        self._previous_io: Dict[str, Dict[str, int]] = {}
        self._previous_netvals: Dict[str, Dict[str, int]] = {}

    def on_reset(self, simulator: Simulator) -> None:
        self.energy_by_component = {}
        self.cycle_energy = []
        self.peak_cycle_energy_fj = 0.0
        self._previous_io = {}
        self._previous_netvals = {}

    def on_cycle(self, simulator: Simulator, cycle: int) -> None:
        collector = self.collector
        total = 0.0
        row = 0
        # gate-mapped combinational components: re-simulate at gate level
        for name, (component, gate_sim, calculator, widths) in self.estimator.gate_mapped.items():
            io_values = simulator.component_io_values(component)
            inputs = {p.name: io_values[p.name] for p in component.input_ports}
            gate_sim.evaluate_ports(inputs, widths)
            snapshot = gate_sim.snapshot()
            previous = self._previous_netvals.get(name)
            if previous is not None:
                energy = calculator.transition_energy(previous, snapshot).total_fj
            else:
                energy = 0.0
            self._previous_netvals[name] = snapshot
            self.energy_by_component[name] = self.energy_by_component.get(name, 0.0) + energy
            total += energy
            if collector is not None:
                collector.add(row, energy)
            row += 1
        # everything else: RTL macromodels
        for component, model in self.estimator.macromodelled:
            current = simulator.component_io_values(component)
            previous = self._previous_io.get(component.name, current)
            energy = model.evaluate(previous, current)
            self._previous_io[component.name] = current
            self.energy_by_component[component.name] = (
                self.energy_by_component.get(component.name, 0.0) + energy
            )
            total += energy
            if collector is not None:
                collector.add(row, energy)
            row += 1
        if total > self.peak_cycle_energy_fj:
            self.peak_cycle_energy_fj = total
        if self.keep_cycle_trace:
            self.cycle_energy.append(total)
        if collector is not None:
            collector.end_cycle()


class GateLevelPowerEstimator:
    """Slow, detailed baseline: per-cycle gate-level re-simulation."""

    name = "gate-level"

    def __init__(
        self,
        module: Module,
        library: Optional[PowerModelLibrary] = None,
        technology: Technology = CB130M_TECHNOLOGY,
        mapper: Optional[TechnologyMapper] = None,
        backend: str = "compiled",
    ) -> None:
        if module.is_hierarchical:
            raise ValueError(
                f"module {module.name!r} is hierarchical and cannot be estimated "
                f"directly: call repro.netlist.flatten(module) first, or go "
                f"through repro.api (its estimator adapters auto-flatten)"
            )
        #: functional-simulation backend used by :meth:`estimate`
        self.backend = backend
        self.module = module
        self.technology = technology
        self.library = library if library is not None else build_seed_library(technology)
        self.mapper = mapper if mapper is not None else TechnologyMapper(technology.cell_library)
        #: name -> (component, gate simulator, power calculator, port widths)
        self.gate_mapped: Dict[str, tuple] = {}
        self.macromodelled: List[tuple] = []
        for component in module.components.values():
            if not component.monitored_ports():
                continue
            if self.mapper.can_map(component):
                netlist = self.mapper.map_component(component)
                widths = {p.name: p.width for p in component.ports.values()}
                self.gate_mapped[component.name] = (
                    component,
                    GateLevelSimulator(netlist),
                    GatePowerCalculator(netlist, technology.cell_library),
                    widths,
                )
            else:
                self.macromodelled.append((component, self.library.lookup(component)))
        #: windowed profile from the most recent profiled :meth:`estimate`
        self.last_profile: Optional[PowerProfile] = None

    # ------------------------------------------------------------------ API
    def estimate(
        self,
        testbench: Testbench,
        max_cycles: Optional[int] = None,
        keep_cycle_trace: bool = True,
        profile: Optional[ProfileConfig] = None,
    ) -> PowerReport:
        start = time.perf_counter()
        simulator = Simulator(self.module, backend=self.backend)
        collector = None
        if profile is not None:
            # collector rows follow the observer's iteration order:
            # gate-mapped components first, then the macromodelled ones
            observed = [
                component for component, *_rest in self.gate_mapped.values()
            ] + [component for component, _ in self.macromodelled]
            collector = WindowedEnergyCollector(
                names=[c.name for c in observed],
                types=[c.type_name for c in observed],
                window_cycles=profile.resolved_window(default=1),
                max_windows=profile.max_windows,
            )
        observer = _GateLevelObserver(
            self, keep_cycle_trace=keep_cycle_trace, collector=collector
        )
        observer.on_reset(simulator)
        simulator.add_observer(observer)
        simulation = simulator.run(testbench, max_cycles=max_cycles)
        elapsed = time.perf_counter() - start
        self.last_profile = (
            collector.profile(
                design=self.module.name,
                estimator=self.name,
                clock_mhz=self.technology.clock_mhz,
                cycles=simulation.cycles,
                notes={
                    "n_gate_mapped": len(self.gate_mapped),
                    "n_macromodelled": len(self.macromodelled),
                },
            )
            if collector is not None
            else None
        )

        technology = self.technology
        cycles = simulation.cycles
        components: Dict[str, ComponentPower] = {}
        total_energy = 0.0
        type_by_name = {c.name: c.type_name for c in self.module.components.values()}
        for name, energy in observer.energy_by_component.items():
            total_energy += energy
            components[name] = ComponentPower(
                name=name,
                component_type=type_by_name.get(name, "unknown"),
                energy_fj=energy,
                average_power_mw=technology.energy_to_power_mw(energy / cycles if cycles else 0.0),
            )
        return PowerReport(
            design=self.module.name,
            estimator=self.name,
            cycles=cycles,
            clock_mhz=technology.clock_mhz,
            total_energy_fj=total_energy,
            average_power_mw=technology.energy_to_power_mw(
                total_energy / cycles if cycles else 0.0
            ),
            peak_power_mw=(
                technology.energy_to_power_mw(observer.peak_cycle_energy_fj)
                if cycles
                else 0.0
            ),
            components=components,
            cycle_energy_fj=list(observer.cycle_energy) if keep_cycle_trace else [],
            estimation_time_s=elapsed,
            notes={
                "n_gate_mapped": len(self.gate_mapped),
                "n_macromodelled": len(self.macromodelled),
            },
        )
