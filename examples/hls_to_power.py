"""Behavioral synthesis to power emulation.

The paper's benchmark RTL comes from a behavioral-synthesis tool (CYBER).
This example goes through the same pipeline with our HLS substrate: describe a
small FIR/transform kernel as a dataflow graph, synthesize it twice (maximum
parallelism vs a resource-constrained schedule sharing one multiplier), and
compare area, latency and estimated power of the two implementations — then
instrument the constrained one for power emulation.

Run:  python examples/hls_to_power.py
"""

from __future__ import annotations

from repro.core import InstrumentationConfig, PowerEmulationFlow
from repro.hls import DataflowGraph, synthesize
from repro.core.synthesis import SynthesisEstimator
from repro.netlist import flatten, module_stats
from repro.power import RTLPowerEstimator, build_seed_library
from repro.sim import CallbackTestbench


def build_kernel() -> DataflowGraph:
    """An 8-tap symmetric FIR kernel (the inner loop of the peaking filter)."""
    g = DataflowGraph("fir8")
    taps = [-2, 3, -7, 22, 22, -7, 3, -2]
    accumulator = None
    for i, coeff in enumerate(taps):
        x = g.input(f"x{i}", 10)
        c = g.const(coeff, 8, name=f"c{i}")
        product = g.mul(x, c, width=20, name=f"p{i}")
        accumulator = product if accumulator is None else g.add(accumulator, product,
                                                                width=20, name=f"s{i}")
    g.output("y", g.asr(accumulator, 5, name="norm"))
    return g


def kernel_testbench(module, n_invocations=40, seed=1):
    """Drive repeated kernel invocations with random inputs."""
    import random

    rng = random.Random(seed)
    latency = module.attributes["hls"]["n_steps"] + 3

    def drive(cycle, sim):
        phase = cycle % latency
        if phase == 0:
            inputs = {f"x{i}": rng.getrandbits(10) for i in range(8)}
            inputs["start"] = 1
            return inputs
        return {"start": 0}

    return CallbackTestbench(drive, n_cycles=n_invocations * latency, name="fir_tb")


def main() -> None:
    graph = build_kernel()
    library = build_seed_library()
    estimator = SynthesisEstimator()

    print("=== behavioral synthesis: parallel vs resource-shared ===")
    variants = {
        "parallel (ASAP)": synthesize(graph, name="fir8_parallel"),
        "1 multiplier + 1 ALU": synthesize(
            graph, resource_constraints={"multiplier": 1, "alu": 1}, name="fir8_shared"
        ),
    }
    for label, result in variants.items():
        module = flatten(result.module)
        synth = estimator.estimate_module(module)
        power = RTLPowerEstimator(module, library=library).estimate(
            kernel_testbench(result.module)
        )
        print(f"--- {label}")
        print(f"    {result.summary()}")
        print(f"    {synth.summary()}")
        print(f"    average power {power.average_power_mw:.4f} mW over {power.cycles} cycles")
        print(f"    {module_stats(module).n_components} RTL components")

    print()
    print("=== power emulation of the resource-shared implementation ===")
    shared = variants["1 multiplier + 1 ALU"]
    flow = PowerEmulationFlow(library=library,
                              config=InstrumentationConfig(coefficient_bits=12))
    report = flow.run(shared.module, kernel_testbench(shared.module),
                      workload_cycles=5_000_000)
    print(report.summary())


if __name__ == "__main__":
    main()
