"""Unit and property tests for combinational RTL components."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.netlist.components import (
    AbsoluteValue,
    Adder,
    AddSub,
    Comparator,
    Concat,
    Constant,
    Decoder,
    Extend,
    LogicOp,
    Multiplier,
    Mux,
    NotOp,
    ReduceOp,
    Saturator,
    ShifterConst,
    ShifterVar,
    Slice,
    Subtractor,
)
from repro.netlist.nets import Net
from repro.netlist.signals import from_signed, mask_value, to_signed

WORD = st.integers(min_value=0, max_value=0xFFFF)


def test_adder_basic_and_carry():
    add = Adder("a0", 8, with_carry_out=True)
    out = add.evaluate({"a": 200, "b": 100})
    assert out["y"] == (300 & 0xFF)
    assert out["cout"] == 1
    out = add.evaluate({"a": 1, "b": 2})
    assert out == {"y": 3, "cout": 0}


def test_adder_with_carry_in():
    add = Adder("a1", 4, with_carry_in=True)
    assert add.evaluate({"a": 7, "b": 7, "cin": 1})["y"] == 15


def test_subtractor_wraps_and_borrows():
    sub = Subtractor("s0", 8, with_borrow_out=True)
    out = sub.evaluate({"a": 5, "b": 10})
    assert out["y"] == mask_value(-5, 8)
    assert out["borrow"] == 1


def test_addsub_selects_operation():
    addsub = AddSub("as0", 8)
    assert addsub.evaluate({"a": 9, "b": 4, "sub": 0})["y"] == 13
    assert addsub.evaluate({"a": 9, "b": 4, "sub": 1})["y"] == 5


def test_multiplier_unsigned_and_signed():
    mul = Multiplier("m0", 8)
    assert mul.evaluate({"a": 15, "b": 17})["y"] == 255
    smul = Multiplier("m1", 8, signed=True, width_y=16)
    result = smul.evaluate({"a": from_signed(-3, 8), "b": from_signed(5, 8)})["y"]
    assert to_signed(result, 16) == -15


def test_comparator_unsigned_and_signed():
    cmp_u = Comparator("c0", 8)
    assert cmp_u.evaluate({"a": 3, "b": 7}) == {"lt": 1, "eq": 0, "gt": 0}
    cmp_s = Comparator("c1", 8, signed=True)
    assert cmp_s.evaluate({"a": from_signed(-1, 8), "b": 0}) == {"lt": 1, "eq": 0, "gt": 0}


def test_absolute_value():
    absval = AbsoluteValue("abs", 8)
    assert absval.evaluate({"a": from_signed(-17, 8)})["y"] == 17
    assert absval.evaluate({"a": 17})["y"] == 17


def test_saturator_signed():
    sat = Saturator("sat", 16, 8, signed=True)
    assert to_signed(sat.evaluate({"a": from_signed(1000, 16)})["y"], 8) == 127
    assert to_signed(sat.evaluate({"a": from_signed(-1000, 16)})["y"], 8) == -128
    assert to_signed(sat.evaluate({"a": from_signed(-5, 16)})["y"], 8) == -5


def test_shifter_const_directions():
    shl = ShifterConst("shl", 8, 2, "left")
    assert shl.evaluate({"a": 0b1011})["y"] == 0b101100
    shr = ShifterConst("shr", 8, 1, "right")
    assert shr.evaluate({"a": 0b1011})["y"] == 0b101
    sra = ShifterConst("sra", 8, 2, "right", arithmetic=True)
    assert sra.evaluate({"a": from_signed(-8, 8)})["y"] == from_signed(-2, 8)


def test_shifter_var():
    barrel = ShifterVar("b0", 16, 4, "left")
    assert barrel.evaluate({"a": 1, "amount": 5})["y"] == 32
    barrel_r = ShifterVar("b1", 16, 4, "right")
    assert barrel_r.evaluate({"a": 0x8000, "amount": 15})["y"] == 1


def test_shifter_rejects_bad_direction():
    with pytest.raises(ValueError):
        ShifterConst("bad", 8, 1, "up")


def test_mux_selects_and_clamps():
    mux = Mux("m", 8, 3)
    values = {"d0": 10, "d1": 20, "d2": 30}
    assert mux.evaluate({**values, "sel": 1})["y"] == 20
    # out-of-range select clamps to the last input
    assert mux.evaluate({**values, "sel": 3})["y"] == 30


def test_logic_ops():
    for op, expected in [
        ("and", 0b1000), ("or", 0b1110), ("xor", 0b0110),
        ("nand", 0b0111), ("nor", 0b0001), ("xnor", 0b1001),
    ]:
        gate = LogicOp(f"g_{op}", op, 4)
        assert gate.evaluate({"a": 0b1100, "b": 0b1010})["y"] == expected


def test_not_and_reduce():
    inv = NotOp("inv", 4)
    assert inv.evaluate({"a": 0b1010})["y"] == 0b0101
    assert ReduceOp("r_or", "or", 4).evaluate({"a": 0})["y"] == 0
    assert ReduceOp("r_or2", "or", 4).evaluate({"a": 2})["y"] == 1
    assert ReduceOp("r_and", "and", 4).evaluate({"a": 0xF})["y"] == 1
    assert ReduceOp("r_xor", "xor", 4).evaluate({"a": 0b0111})["y"] == 1


def test_concat_slice_extend():
    cat = Concat("cat", [4, 4])
    assert cat.evaluate({"i0": 0xA, "i1": 0x5})["y"] == 0x5A
    sl = Slice("sl", 8, 7, 4)
    assert sl.evaluate({"a": 0x5A})["y"] == 0x5
    zext = Extend("z", 4, 8, signed=False)
    assert zext.evaluate({"a": 0xF})["y"] == 0x0F
    sext = Extend("s", 4, 8, signed=True)
    assert sext.evaluate({"a": 0xF})["y"] == 0xFF


def test_slice_bounds_checked():
    with pytest.raises(ValueError):
        Slice("bad", 8, 8, 0)
    with pytest.raises(ValueError):
        Slice("bad2", 8, 3, 5)


def test_constant_and_decoder():
    const = Constant("c", 8, 0x1FF)
    assert const.evaluate({})["y"] == 0xFF
    assert const.monitored_ports() == []
    dec = Decoder("d", 3)
    assert dec.evaluate({"a": 5})["y"] == 1 << 5


def test_port_connection_width_check():
    add = Adder("a", 8)
    with pytest.raises(ValueError):
        add.connect("a", Net("n", 4))


def test_double_driver_rejected():
    add1 = Adder("a1", 8)
    add2 = Adder("a2", 8)
    net = Net("shared", 8)
    add1.connect("y", net)
    with pytest.raises(ValueError):
        add2.connect("y", net)


def test_macromodel_key_distinguishes_widths():
    assert Adder("x", 8).macromodel_key() != Adder("y", 16).macromodel_key()
    assert Adder("x", 8).macromodel_key() == Adder("z", 8).macromodel_key()


@given(WORD, WORD)
def test_adder_matches_python_addition(a, b):
    add = Adder("a", 16)
    assert add.evaluate({"a": a, "b": b})["y"] == (a + b) & 0xFFFF


@given(WORD, WORD)
def test_subtractor_matches_python(a, b):
    sub = Subtractor("s", 16)
    assert sub.evaluate({"a": a, "b": b})["y"] == (a - b) & 0xFFFF


@given(WORD, WORD)
def test_signed_multiplier_matches_python(a, b):
    mul = Multiplier("m", 16, signed=True)
    expected = to_signed(a, 16) * to_signed(b, 16)
    assert to_signed(mul.evaluate({"a": a, "b": b})["y"], 32) == expected


@given(WORD, st.integers(min_value=0, max_value=15))
def test_variable_shift_matches_python(a, amount):
    shifter = ShifterVar("v", 16, 4, "right")
    assert shifter.evaluate({"a": a, "amount": amount})["y"] == a >> amount


@given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
def test_concat_then_slice_recovers_parts(lo, hi):
    cat = Concat("cat", [8, 8])
    combined = cat.evaluate({"i0": lo, "i1": hi})["y"]
    assert Slice("s_lo", 16, 7, 0).evaluate({"a": combined})["y"] == lo
    assert Slice("s_hi", 16, 15, 8).evaluate({"a": combined})["y"] == hi
