"""Concurrent clients against the power-estimation service, coalesced.

Eight independent clients each submit one ``RunSpec`` to a running
:class:`~repro.serve.PowerServer` — the same design with different stimulus
seeds, as eight users (or CI shards) would.  Because the submissions land
inside one coalescing window and agree on the coalescing key
(:func:`repro.api.coalesce_key`), the server merges them into a single
shared ``BatchRTLPowerEstimator`` lane block: one lane-program compile, one
kernel build, one settle per cycle for all eight jobs.  The process-wide
compile counters prove it, and each client still receives its own
``EstimateResult`` — bit-identical to what a standalone
``repro.api.estimate`` call would have produced.

An *incompatible* job (a different cycle budget) rides along to show
isolation: it executes as its own group without disturbing the merged one.

One more client streams its job's structured progress events
(queued → coalesced → compiling → simulating → done) as they happen — and,
being compatible, lands in the shared lane block too.

Run from the repository root:

    PYTHONPATH=src python examples/serve_concurrent_clients.py

The same flow works across processes with the network front end — start
``PYTHONPATH=src python -m repro serve`` and point ``python -m repro
submit``/``status`` at it.
"""

from __future__ import annotations

import asyncio

from repro.api import RunSpec, coalesce_key, estimate
from repro.serve import Client, PowerServer, build_counts

DESIGN = "binary_search"
N_CLIENTS = 8
MAX_CYCLES = 200


def _spec(seed: int, max_cycles: int = MAX_CYCLES) -> RunSpec:
    return RunSpec(design=DESIGN, seed=seed, max_cycles=max_cycles,
                   kernel_backend="numpy")


async def client(server: PowerServer, seed: int):
    """One independent client: submit, then await the demuxed result."""
    return await Client(server).estimate(_spec(seed))


async def watch_events(server: PowerServer, seed: int) -> None:
    """A client that streams its job's progress instead of just waiting."""
    job_client = Client(server)
    job_id = await job_client.submit(_spec(seed))
    async for event in job_client.events(job_id):
        facts = ", ".join(
            f"{key}={value}" for key, value in sorted(event.detail.items())
            if value not in (None, {}, [])
        )
        print(f"  [{job_id}] {event.seq}: {event.state:10s} {facts}")


async def main() -> None:
    async with PowerServer(coalesce_window_s=0.05) as server:
        before = build_counts()

        # eight compatible clients + one incompatible rider, all concurrent
        tasks = [client(server, seed) for seed in range(N_CLIENTS)]
        tasks.append(Client(server).estimate(_spec(0, max_cycles=64)))
        results = await asyncio.gather(*tasks, watch_events(server, 99))

        built = {k: build_counts()[k] - before[k] for k in before}
        merged, rider = results[:N_CLIENTS], results[N_CLIENTS]

        print()
        print(f"coalescing key shared by the merged jobs:\n"
              f"  {coalesce_key(_spec(0))}")
        group_size = merged[0].metadata["group_size"]
        print(f"\n{N_CLIENTS} compatible clients + the event watcher -> one "
              f"shared lane block of {group_size}; the incompatible rider "
              f"ran alone (group size {rider.metadata['group_size']})")
        print(f"builds for all {N_CLIENTS + 2} jobs: "
              f"{built['program_builds']} lane programs / "
              f"{built['kernel_builds']} kernels — one for the merged block, "
              f"one for the rider")

        print("\nper-client results (each lane demuxed to its own job):")
        for seed, result in enumerate(merged):
            alone = estimate(_spec(seed).replace(backend="batch"))
            match = "bit-identical" if (
                result.report.average_power_mw
                == alone.report.average_power_mw
            ) else "MISMATCH"
            print(f"  seed {seed}: {result.report.average_power_mw:8.4f} mW "
                  f"over {result.report.cycles} cycles "
                  f"(job {result.metadata['job_id']}, {match} to a "
                  f"standalone estimate)")

        stats = server.stats()
        print(f"\nserver: {stats['jobs_submitted']} jobs, "
              f"{stats['coalesced_jobs']} coalesced into shared batches, "
              f"{stats['groups']} execution groups")


if __name__ == "__main__":
    asyncio.run(main())
