"""repro.serve — the power-estimation service with request coalescing.

A long-lived job server over the unified :mod:`repro.api` surface: clients
submit :class:`~repro.api.spec.RunSpec` jobs and get job ids back; the
server merges compatible pending jobs (equal
:func:`~repro.api.spec.coalesce_key`) into shared
:class:`~repro.power.lane_estimator.BatchRTLPowerEstimator` lane blocks —
one lane-program compile, one kernel build, one settle per cycle for the
whole group — demultiplexes per-job :class:`~repro.api.spec.EstimateResult`
objects back out, and streams structured progress events
(``queued → coalesced → compiling → simulating → done``).

Pieces:

* :class:`PowerServer` (:mod:`repro.serve.server`) — the asyncio job server:
  coalescing dispatcher, worker-thread execution, per-job error isolation
  (a poisoned lane-group member fails alone), warm process caches.
* :class:`Client` (:mod:`repro.serve.client`) — the in-process front end;
  ``Client(server).estimate_all(specs)`` is the served counterpart of
  ``estimate_many`` with independent, concurrent submissions.
* :class:`HttpFrontend` / :func:`run_stdio` (:mod:`repro.serve.http`) — thin
  network/pipe front ends (``python -m repro serve``).
* :class:`JobStore` (:mod:`repro.serve.store`) — persistent job ledger on
  :class:`~repro.bench.cache.ResultCache`, sharing the ``estimate`` result
  namespace with the sweep runner.
* :class:`CoalescingQueue` (:mod:`repro.serve.coalesce`) — arrival-ordered
  queue draining into mergeable :class:`JobGroup` lane blocks.
* :mod:`repro.serve.protocol` — job states, records and progress events.

Quickstart::

    import asyncio
    from repro.api import RunSpec
    from repro.serve import Client, PowerServer

    async def main():
        async with PowerServer(cache_dir=".cache") as server:
            client = Client(server)
            specs = [RunSpec(design="DCT", seed=s) for s in range(8)]
            results = await client.estimate_all(specs)   # one shared batch
            print([r.average_power_mw for r in results])

    asyncio.run(main())
"""

from repro.serve.client import Client
from repro.serve.coalesce import CoalescingQueue, JobGroup
from repro.serve.http import HttpFrontend, run_stdio
from repro.serve.protocol import (
    JOB_STATES,
    TERMINAL_STATES,
    JobRecord,
    ProgressEvent,
)
from repro.serve.server import JobFailed, PowerServer, build_counts
from repro.serve.store import JobStore

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "Client",
    "CoalescingQueue",
    "HttpFrontend",
    "JobFailed",
    "JobGroup",
    "JobRecord",
    "JobStore",
    "PowerServer",
    "ProgressEvent",
    "build_counts",
    "run_stdio",
]
