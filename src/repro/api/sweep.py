"""The (design × engine × stimulus-seed) sweep runner.

``sweep(SweepSpec(...))`` expands the sweep into :class:`RunSpec` tasks and
executes them with every scaling lever the repository has grown:

* **Batch lanes** — all seeds of one (design, ``rtl``) group run as
  :class:`~repro.sim.batch.BatchSimulator` lanes: the module settles once per
  cycle for every seed and each component's macromodel is evaluated with one
  vectorized pass over the lane arrays (the ROADMAP's named multi-seed RTL
  power sweep workload).
* **Shard pool** — independent groups/tasks fan out over the fault-tolerant
  scheduler (:func:`repro.resilience.runner.run_resilient_tasks`): per-task
  retries with deterministic backoff, wall-clock deadlines, and crash
  isolation (a worker segfault respawns the pool and quarantines only the
  culprit task).
* **Disk cache** — every completed :class:`EstimateResult` persists in the
  code-fingerprinted :class:`~repro.bench.cache.ResultCache` as it lands, so
  repeat sweeps of unchanged code — including ``sweep(..., resume=True)``
  after a failure or Ctrl-C — recompute only what is missing.

Failure policy is ``SweepSpec.on_error``: ``"raise"`` (default) aborts on the
first exhausted task, re-raising its original exception; ``"skip"`` records a
structured :class:`~repro.resilience.failures.TaskFailure` per lost task and
still returns every healthy result (``SweepResult.ok`` is then False).
Ctrl-C raises :class:`SweepInterrupted` — a ``KeyboardInterrupt`` subclass
carrying the partial :class:`SweepResult` — after persisting completed work.
A *sweep manifest* (``sweep-manifest-<hash>.json`` in the cache directory)
tracks per-task status (``pending``/``cached``/``done``/``failed``) across
runs of the same sweep identity.

The result is a JSON-round-trippable :class:`SweepResult` carrying one
uniform result per completed task plus per-(design, engine) power
distributions and the structured failures.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.api.estimators import RTLEstimatorAdapter, estimate
from repro.api.spec import (
    EXECUTION_POLICY_FIELDS,
    EstimateResult,
    RunSpec,
    SweepSpec,
)
from repro.bench.cache import ResultCache
from repro.resilience.failures import TaskFailure
from repro.resilience.policy import RetryPolicy
from repro.resilience.runner import run_resilient_tasks

#: cache namespace for unified-API estimation results
CACHE_NAMESPACE = "estimate"


class SweepInterrupted(KeyboardInterrupt):
    """Ctrl-C during a sweep, carrying the partial :class:`SweepResult`.

    Completed results were already persisted to the cache (when one is
    configured) before this is raised, so ``sweep(..., resume=True)`` picks
    up exactly where the interrupt landed.
    """

    def __init__(self, partial: "SweepResult") -> None:
        super().__init__("sweep interrupted")
        self.partial = partial


def _sweep_worker(payload: Dict[str, object]) -> List[Dict[str, object]]:
    """Shard-pool entry point: one task group's results as plain dicts."""
    if payload["kind"] == "rtl-batch":
        specs = [RunSpec.from_dict(d) for d in payload["specs"]]
        adapter = RTLEstimatorAdapter()
        return [result.to_dict() for result in adapter.estimate_many(specs)]
    spec = RunSpec.from_dict(payload["spec"])
    return [estimate(spec).to_dict()]


@dataclass
class SweepResult:
    """Results plus scheduling metadata from one sweep."""

    spec: SweepSpec
    #: one result per *completed* task, in ``spec.run_specs()`` order
    results: List[EstimateResult]
    wall_time_s: float
    n_workers: int
    #: tasks served from the on-disk result cache
    cache_hits: int = 0
    #: structured record of every task that produced no result
    failures: List[TaskFailure] = field(default_factory=list)
    #: the sweep was stopped by Ctrl-C before all tasks finished
    interrupted: bool = False
    #: worker pools killed and respawned (crashes + timeouts)
    n_pool_respawns: int = 0

    @property
    def ok(self) -> bool:
        """Every task produced a result and the sweep ran to completion."""
        return not self.failures and not self.interrupted

    # ---------------------------------------------------------------- views
    def for_task(self, design: str, engine: str) -> List[EstimateResult]:
        return [
            r for r in self.results
            if r.spec.design == design and r.spec.engine == engine
        ]

    def distribution(self, design: str, engine: str = "rtl") -> Dict[str, float]:
        """Average-power distribution over seeds for one (design, engine)."""
        powers = [r.average_power_mw for r in self.for_task(design, engine)]
        if not powers:
            raise KeyError(f"no results for design {design!r} engine {engine!r}")
        mean = sum(powers) / len(powers)
        variance = sum((p - mean) ** 2 for p in powers) / len(powers)
        return {
            "n_seeds": len(powers),
            "mean_mw": mean,
            "std_mw": variance ** 0.5,
            "min_mw": min(powers),
            "max_mw": max(powers),
        }

    def summary(self) -> str:
        lines = [
            f"{'design':12s} {'engine':9s} {'seeds':>5s} {'mean (mW)':>10s} "
            f"{'std (mW)':>9s} {'min (mW)':>9s} {'max (mW)':>9s}"
        ]
        for design in self.spec.designs:
            for engine in self.spec.engines:
                try:
                    d = self.distribution(design, engine)
                except KeyError:
                    continue
                lines.append(
                    f"{design:12s} {engine:9s} {d['n_seeds']:5d} {d['mean_mw']:10.4f} "
                    f"{d['std_mw']:9.4f} {d['min_mw']:9.4f} {d['max_mw']:9.4f}"
                )
        for failure in self.failures:
            lines.append(f"FAILED  {failure.summary()}")
        tail = (
            f"{len(self.results)} runs in {self.wall_time_s:.2f}s "
            f"({self.n_workers} workers, {self.cache_hits} cache hits"
        )
        if self.failures:
            tail += f", {len(self.failures)} failed"
        if self.n_pool_respawns:
            tail += f", {self.n_pool_respawns} pool respawns"
        if self.interrupted:
            tail += ", interrupted"
        lines.append(tail + ")")
        return "\n".join(lines)

    # -------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec.to_dict(),
            "results": [result.to_dict() for result in self.results],
            "wall_time_s": self.wall_time_s,
            "n_workers": self.n_workers,
            "cache_hits": self.cache_hits,
            "failures": [failure.to_dict() for failure in self.failures],
            "interrupted": self.interrupted,
            "n_pool_respawns": self.n_pool_respawns,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SweepResult":
        return cls(
            spec=SweepSpec.from_dict(payload["spec"]),
            results=[EstimateResult.from_dict(r) for r in payload["results"]],
            wall_time_s=payload.get("wall_time_s", 0.0),
            n_workers=payload.get("n_workers", 0),
            cache_hits=payload.get("cache_hits", 0),
            failures=[
                TaskFailure.from_dict(f) for f in payload.get("failures") or []
            ],
            interrupted=bool(payload.get("interrupted", False)),
            n_pool_respawns=int(payload.get("n_pool_respawns", 0)),
        )


def _group_tasks(
    missing: List[RunSpec],
) -> List[Dict[str, object]]:
    """Group cache-missing specs into shard payloads.

    Multi-seed RTL groups (backend ``auto``/``batch``) become one
    ``rtl-batch`` payload — their seeds run as simulator lanes inside one
    worker; everything else is one payload per spec.
    """
    by_group: Dict[Tuple[str, str], List[RunSpec]] = {}
    for spec in missing:
        by_group.setdefault((spec.design, spec.engine), []).append(spec)
    payloads: List[Dict[str, object]] = []
    for (_, engine), specs in by_group.items():
        if (
            engine == "rtl"
            and len(specs) > 1
            and all(s.backend in ("auto", "batch") for s in specs)
        ):
            payloads.append(
                {"kind": "rtl-batch", "specs": [s.to_dict() for s in specs]}
            )
        else:
            payloads.extend({"kind": "single", "spec": s.to_dict()} for s in specs)
    return payloads


def _payload_specs(payload: Dict[str, object]) -> List[Dict[str, object]]:
    if payload["kind"] == "rtl-batch":
        return list(payload["specs"])
    return [payload["spec"]]


def _payload_label(payload: Dict[str, object]) -> str:
    specs = _payload_specs(payload)
    first = specs[0]
    if len(specs) > 1:
        seeds = sorted(int(d["seed"]) for d in specs)
        return f"{first['design']}[{first['engine']}] seeds {seeds[0]}-{seeds[-1]}"
    return _task_key(first)


def _task_key(spec_dict: Dict[str, object]) -> str:
    """The manifest/status key of one run: human-readable and unique."""
    return (
        f"{spec_dict['design']}[{spec_dict['engine']}] "
        f"seed {spec_dict['seed']}"
    )


def _cache_key(cache: ResultCache, spec_dict: Dict[str, object]) -> str:
    """Cache key for a spec dict, ignoring execution-policy fields.

    Mirrors :meth:`RunSpec.cache_dict` for dicts that already crossed the
    worker boundary: a run retried under a different timeout is still the
    same run.
    """
    payload = dict(spec_dict)
    for name in EXECUTION_POLICY_FIELDS:
        payload.pop(name, None)
    return cache.key(spec=payload)


# ------------------------------------------------------------- the manifest


def sweep_identity(spec: SweepSpec) -> str:
    """A stable hash of *what the sweep computes* (not how it executes).

    Worker counts, retry budgets, failure policy and the cache location can
    all change between a run and its ``--resume`` without changing which
    sweep it is.
    """
    payload = spec.to_dict()
    for name in EXECUTION_POLICY_FIELDS + ("on_error", "n_workers", "cache_dir"):
        payload.pop(name, None)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def manifest_path(spec: SweepSpec) -> Optional[str]:
    """Where this sweep's manifest lives (None without a cache_dir)."""
    if not spec.cache_dir:
        return None
    return os.path.join(
        os.path.abspath(spec.cache_dir),
        f"sweep-manifest-{sweep_identity(spec)}.json",
    )


def load_manifest(spec: SweepSpec) -> Optional[Dict[str, object]]:
    """The persisted manifest of this sweep identity, or None."""
    path = manifest_path(spec)
    if path is None:
        return None
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


class _Manifest:
    """Per-task status ledger, atomically rewritten as outcomes land."""

    def __init__(self, spec: SweepSpec) -> None:
        self.path = manifest_path(spec)
        self.payload: Dict[str, object] = {
            "sweep": sweep_identity(spec),
            "designs": list(spec.designs),
            "engines": list(spec.engines),
            "seeds": list(spec.seeds),
            "tasks": {},
        }

    def set_status(self, key: str, status: str, flush: bool = False) -> None:
        self.payload["tasks"][key] = status
        if flush:
            self.flush()

    def flush(self) -> None:
        if self.path is None:
            return
        directory = os.path.dirname(self.path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(self.payload, handle, sort_keys=True, indent=1)
            os.replace(tmp_path, self.path)
        except OSError:  # pragma: no cover - read-only cache dir
            try:
                os.unlink(tmp_path)
            except OSError:
                pass


# -------------------------------------------------------------- the runner


def sweep(spec: SweepSpec, resume: bool = False) -> SweepResult:
    """Run the sweep: batch lanes per RTL group, resilient pool across groups.

    ``resume=True`` requires a ``cache_dir`` and recomputes only tasks with
    no cached result — exactly the ones that failed or never ran in the
    previous attempt.  (Plain runs also consult the cache; ``resume`` makes
    depending on it explicit and fails loudly when there is nothing to
    resume from.)
    """
    if resume and not spec.cache_dir:
        raise ValueError(
            "resume needs a cache_dir: completed results are resumed from "
            "the on-disk result cache"
        )
    start = time.perf_counter()
    all_specs = spec.run_specs()
    cache = (
        ResultCache(spec.cache_dir, namespace=CACHE_NAMESPACE)
        if spec.cache_dir
        else None
    )
    manifest = _Manifest(spec)

    sweep_span = obs.span(
        "sweep", n_tasks=len(all_specs), n_workers=spec.n_workers)

    resolved: Dict[RunSpec, EstimateResult] = {}
    cache_hits = 0
    if cache is not None:
        with obs.span("sweep.cache_scan", n_tasks=len(all_specs)) as scan:
            for run_spec in all_specs:
                payload = cache.get(cache.key(spec=run_spec.cache_dict()))
                if payload is not None:
                    resolved[run_spec] = EstimateResult.from_dict(payload)
                    cache_hits += 1
                    manifest.set_status(_task_key(run_spec.to_dict()), "cached")
            scan.set(cache_hits=cache_hits)

    missing = [s for s in all_specs if s not in resolved]
    payloads = _group_tasks(missing)
    labels = [_payload_label(p) for p in payloads]
    for payload in payloads:
        for spec_dict in _payload_specs(payload):
            manifest.set_status(_task_key(spec_dict), "pending")
    manifest.flush()

    policy = RetryPolicy.from_env(
        timeout_s=spec.timeout_s, max_retries=spec.max_retries
    )
    failures: List[TaskFailure] = []

    def collect(outcome) -> None:
        payload = payloads[outcome.index]
        spec_dicts = _payload_specs(payload)
        if outcome.ok:
            for result_dict in outcome.value:
                # record how many tries this result cost (acceptance: the
                # transient task's retry count is visible in its result)
                result_dict.setdefault("metadata", {})
                result_dict["metadata"]["task_attempts"] = outcome.attempts
                # persist immediately so completed work survives a later
                # failure or Ctrl-C
                if cache is not None:
                    cache.put(_cache_key(cache, result_dict["spec"]), result_dict)
                result = EstimateResult.from_dict(result_dict)
                resolved[result.spec] = result
                manifest.set_status(_task_key(result_dict["spec"]), "done")
        else:
            failure = outcome.failure
            failure.context["specs"] = spec_dicts
            failures.append(failure)
            if failure.kind not in ("skipped", "interrupted"):
                # skipped/interrupted tasks never ran — they stay "pending"
                # in the manifest so a resume knows they are simply missing
                for spec_dict in spec_dicts:
                    manifest.set_status(_task_key(spec_dict), "failed")
        manifest.flush()

    run_outcome = run_resilient_tasks(
        payloads,
        _sweep_worker,
        n_workers=spec.n_workers,
        policy=policy,
        labels=labels,
        on_outcome=collect,
        stop_on_failure=(spec.on_error == "raise"),
    )

    results = [resolved[s] for s in all_specs if s in resolved]
    sweep_span.set(cache_hits=cache_hits, n_results=len(results),
                   n_failures=len(failures))
    sweep_span.end()
    result = SweepResult(
        spec=spec,
        results=results,
        wall_time_s=time.perf_counter() - start,
        n_workers=spec.n_workers,
        cache_hits=cache_hits,
        failures=failures,
        interrupted=run_outcome.interrupted,
        n_pool_respawns=run_outcome.n_pool_respawns,
    )
    if run_outcome.interrupted:
        raise SweepInterrupted(result)
    if spec.on_error == "raise":
        run_outcome.raise_first_failure()
    return result
