"""Bubble Sort benchmark: an in-memory sorting engine.

The engine sorts ``depth`` words held in an on-chip single-port RAM.  An FSM
walks the classic nested loops; the inner-loop body reads two adjacent
elements (two cycles each through the synchronous read port), compares them
and writes them back swapped if they are out of order.

Interface
---------
inputs  : ``start`` (1)
outputs : ``done`` (1), ``swaps`` (16)

The testbench loads the memory through the backdoor, pulses ``start``, waits
for ``done`` and verifies the memory contents are sorted.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.netlist.builder import NetlistBuilder
from repro.netlist.module import Module
from repro.sim.testbench import Testbench
from repro.designs import stimuli

DEFAULT_DEPTH = 32
DEFAULT_WIDTH = 16


def build(depth: int = DEFAULT_DEPTH, width: int = DEFAULT_WIDTH) -> Module:
    """Build the bubble-sort engine for ``depth`` words of ``width`` bits."""
    addr_width = max(1, (depth - 1).bit_length())
    count_width = addr_width + 1

    b = NetlistBuilder("Bubble_Sort")
    start = b.input("start", 1)

    # ---------------------------------------------------------------- state
    i_q = b.register("reg_i", count_width, has_enable=True)       # outer index
    j_q = b.register("reg_j", count_width, has_enable=True)       # inner index
    a_q = b.register("reg_a", width, has_enable=True)             # element a[j]
    bb_q = b.register("reg_b", width, has_enable=True)            # element a[j+1]
    swaps_q = b.register("reg_swaps", 16, has_enable=True)        # swap counter

    # ------------------------------------------------------------- datapath
    one = b.const(1, count_width, name="const_one")
    j_plus1 = b.add(j_q, one, name="j_inc")
    i_plus1 = b.add(i_q, one, name="i_inc")
    limit_n1 = b.const(depth - 1, count_width, name="const_n1")
    inner_limit = b.sub(limit_n1, i_q, name="inner_limit")        # N-1-i

    # ----------------------------------------------------------- controller
    # status signals
    swap_needed = b.compare(a_q, bb_q, name="cmp_elems")[2]          # a > b
    inner_done = b.compare(j_plus1, inner_limit, name="cmp_inner")[0]  # j+1 < N-1-i -> continue
    outer_done = b.compare(i_plus1, limit_n1, name="cmp_outer")[0]     # i+1 < N-1   -> continue

    fsm, ctrl = b.fsm(
        "ctrl",
        states=["IDLE", "OUTER_INIT", "INNER_INIT", "READ1", "READ2", "CMPST",
                "DECIDE", "WRITE1", "WRITE2", "NEXT", "OUTER_NEXT", "FINISH"],
        inputs={
            "start": start,
            "swap": swap_needed,
            "inner_more": inner_done,
            "outer_more": outer_done,
        },
        outputs={
            "i_init": 1, "i_en": 1,
            "j_init": 1, "j_en": 1,
            "a_en": 1, "b_en": 1,
            "addr_sel": 1, "we": 1, "wd_sel": 1,
            "swaps_en": 1, "swaps_clear": 1,
            "done": 1,
        },
        moore_outputs={
            "OUTER_INIT": {"i_init": 1, "i_en": 1, "swaps_clear": 1, "swaps_en": 1},
            "INNER_INIT": {"j_init": 1, "j_en": 1},
            "READ1": {"addr_sel": 0},
            "READ2": {"a_en": 1, "addr_sel": 1},
            "CMPST": {"b_en": 1},
            "WRITE1": {"we": 1, "addr_sel": 0, "wd_sel": 0, "swaps_en": 1},
            "WRITE2": {"we": 1, "addr_sel": 1, "wd_sel": 1},
            "NEXT": {"j_en": 1},
            "OUTER_NEXT": {"i_en": 1},
            "FINISH": {"done": 1},
        },
    )
    fsm.when("IDLE", "OUTER_INIT", start=1)
    fsm.otherwise("OUTER_INIT", "INNER_INIT")
    fsm.otherwise("INNER_INIT", "READ1")
    fsm.otherwise("READ1", "READ2")
    fsm.otherwise("READ2", "CMPST")
    # both elements are registered after CMPST; the comparison result is acted
    # on in DECIDE when reg_a and reg_b are stable
    fsm.otherwise("CMPST", "DECIDE")
    fsm.when("DECIDE", "WRITE1", swap=1)
    fsm.otherwise("DECIDE", "NEXT")
    fsm.otherwise("WRITE1", "WRITE2")
    fsm.otherwise("WRITE2", "NEXT")
    fsm.when("NEXT", "READ1", inner_more=1)
    fsm.otherwise("NEXT", "OUTER_NEXT")
    fsm.when("OUTER_NEXT", "INNER_INIT", outer_more=1)
    fsm.otherwise("OUTER_NEXT", "FINISH")
    fsm.otherwise("FINISH", "IDLE")

    # ----------------------------------------------------------- memory port
    zero_c = b.const(0, count_width, name="const_zero")
    addr = b.mux(ctrl["addr_sel"], j_q, j_plus1, name="addr_mux")
    wdata = b.mux(ctrl["wd_sel"], bb_q, a_q, name="wdata_mux")
    rdata = b.memory("array", width, depth, we=ctrl["we"],
                     addr=b.slice(addr, addr_width - 1, 0), wdata=wdata, sync_read=True)

    # --------------------------------------------------------- state update
    b.drive("reg_i", d=b.mux(ctrl["i_init"], i_plus1, zero_c, name="i_mux"), en=ctrl["i_en"])
    b.drive("reg_j", d=b.mux(ctrl["j_init"], j_plus1, zero_c, name="j_mux"), en=ctrl["j_en"])
    b.drive("reg_a", d=rdata, en=ctrl["a_en"])
    b.drive("reg_b", d=rdata, en=ctrl["b_en"])
    swaps_inc = b.add(swaps_q, b.const(1, 16, name="const_one16"), name="swaps_inc")
    b.drive("reg_swaps",
            d=b.mux(ctrl["swaps_clear"], swaps_inc, b.const(0, 16, name="const_zero16"),
                    name="swaps_mux"),
            en=ctrl["swaps_en"])

    b.output("done", ctrl["done"])
    b.output("swaps", swaps_q)

    module = b.build()
    module.attributes["depth"] = depth
    module.attributes["width"] = width
    module.attributes["memory"] = "array"
    module.attributes["description"] = "bubble sort engine over on-chip RAM"
    return module


def cycles_per_sort(depth: int) -> int:
    """Rough cycle count of one full sort (used for nominal workload sizing)."""
    comparisons = depth * (depth - 1) // 2
    return 6 * comparisons + 3 * depth + 10


class BubbleSortTestbench(Testbench):
    """Loads data, runs the sort, verifies the memory is sorted."""

    def __init__(self, data: Sequence[int], name: str = "bubble_sort_tb") -> None:
        super().__init__(name)
        self.data = list(data)
        self._started = False
        self.max_cycles = cycles_per_sort(len(self.data)) * 3 + 100

    def bind(self, simulator) -> None:
        memory = self._memory(simulator)
        memory.load(self.data)
        self._started = False

    @staticmethod
    def _memory(simulator):
        # the memory keeps its name through flatten() / instrumentation prefixes
        for name, component in simulator.module.components.items():
            if component.type_name == "memory" and name.endswith("array"):
                return component
        raise KeyError("sort memory not found in simulated module")

    def drive(self, cycle: int, simulator):
        if not self._started:
            self._started = True
            return {"start": 1}
        return {"start": 0}

    def finished(self, cycle: int, simulator) -> bool:
        return bool(simulator.get_output("done"))

    def check(self, cycle: int, simulator) -> None:
        if simulator.get_output("done"):
            memory = self._memory(simulator)
            contents = [memory.read_word(i) for i in range(len(self.data))]
            assert contents == sorted(self.data), "memory is not sorted after done"
            self.capture("sorted", contents)
            self.capture("swaps", simulator.get_output("swaps"))


def testbench(depth: int = DEFAULT_DEPTH, seed: int = 11,
              width: int = DEFAULT_WIDTH) -> BubbleSortTestbench:
    """Standard stimulus: a random array filling the engine's memory."""
    return BubbleSortTestbench(stimuli.random_array(depth, seed=seed, width=width))
