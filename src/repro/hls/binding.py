"""Operation-to-unit binding and left-edge register binding."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.hls.allocation import SHARED_CLASSES, Allocation
from repro.hls.dfg import DataflowGraph
from repro.hls.scheduling import OP_CLASSES, Schedule


@dataclass
class ValueLifetime:
    """Register-allocation interval of one operation result."""

    node: str
    width: int
    #: step at whose end the value is written into its register
    birth: int
    #: last step in which the value is read (inclusive)
    death: int

    def overlaps(self, other: "ValueLifetime") -> bool:
        return not (self.death < other.birth or other.death < self.birth)


@dataclass
class Binding:
    """Complete binding: operations to units, values to registers."""

    #: operation node -> functional unit name (shared units and dedicated ones)
    unit_of: Dict[str, str] = field(default_factory=dict)
    #: register name -> list of value (node) names stored in it
    register_values: Dict[str, List[str]] = field(default_factory=dict)
    #: value (node) name -> register name
    register_of: Dict[str, str] = field(default_factory=dict)
    #: register name -> width
    register_widths: Dict[str, int] = field(default_factory=dict)
    #: value lifetimes (kept for inspection/tests)
    lifetimes: Dict[str, ValueLifetime] = field(default_factory=dict)

    @property
    def n_registers(self) -> int:
        return len(self.register_values)


def bind(graph: DataflowGraph, schedule: Schedule, allocation: Allocation) -> Binding:
    """Bind scheduled operations to units and their results to registers."""
    binding = Binding()
    _bind_operations(graph, schedule, allocation, binding)
    _bind_registers(graph, schedule, binding)
    return binding


# ---------------------------------------------------------------- operations
def _bind_operations(
    graph: DataflowGraph,
    schedule: Schedule,
    allocation: Allocation,
    binding: Binding,
) -> None:
    # dedicated units simply carry their node's name
    for node_name in allocation.dedicated:
        binding.unit_of[node_name] = f"ded_{node_name}"
    # shared units: per step, hand out units round-robin within each class
    for step in range(schedule.n_steps):
        used: Dict[str, int] = {op_class: 0 for op_class in allocation.shared_units}
        for node in sorted(schedule.operations_in_step(step), key=lambda n: n.name):
            op_class = OP_CLASSES[node.op]
            if op_class not in SHARED_CLASSES:
                continue
            units = allocation.shared_units[op_class]
            index = used[op_class]
            if index >= len(units):
                raise ValueError(
                    f"step {step} needs more {op_class} units than allocated "
                    f"({len(units)}); schedule and allocation disagree"
                )
            binding.unit_of[node.name] = units[index]
            used[op_class] = index + 1


# ----------------------------------------------------------------- registers
def _lifetimes(graph: DataflowGraph, schedule: Schedule) -> List[ValueLifetime]:
    lifetimes: List[ValueLifetime] = []
    n_steps = schedule.n_steps
    output_nodes = set(graph.outputs.values())
    for node in graph.operations:
        birth = schedule.start_step[node.name] + schedule.latency(node.name) - 1
        death = birth
        for consumer in graph.consumers(node.name):
            death = max(death, schedule.start_step[consumer.name])
        if node.name in output_nodes:
            # outputs must survive until the controller signals completion
            death = max(death, n_steps)
        lifetimes.append(ValueLifetime(node.name, node.width, birth, death))
    return lifetimes


def _bind_registers(graph: DataflowGraph, schedule: Schedule, binding: Binding) -> None:
    """Left-edge algorithm over value lifetimes."""
    lifetimes = sorted(_lifetimes(graph, schedule), key=lambda lt: (lt.birth, lt.death))
    registers: List[Tuple[str, List[ValueLifetime]]] = []
    for lifetime in lifetimes:
        binding.lifetimes[lifetime.node] = lifetime
        placed = False
        for reg_name, occupants in registers:
            if all(not lifetime.overlaps(existing) for existing in occupants):
                occupants.append(lifetime)
                binding.register_values[reg_name].append(lifetime.node)
                binding.register_of[lifetime.node] = reg_name
                binding.register_widths[reg_name] = max(
                    binding.register_widths[reg_name], lifetime.width
                )
                placed = True
                break
        if not placed:
            reg_name = f"r{len(registers)}"
            registers.append((reg_name, [lifetime]))
            binding.register_values[reg_name] = [lifetime.node]
            binding.register_of[lifetime.node] = reg_name
            binding.register_widths[reg_name] = lifetime.width
