"""Process-pool sharding for per-design benchmark studies.

The Figure 3 study is embarrassingly parallel: every design's row is computed
independently.  :func:`run_sharded` fans the requested designs out over a
``ProcessPoolExecutor`` (one design per task), with each worker process
holding a lazily constructed study of its own — the seed library and tool
calibration are built once per worker, then amortized over every design that
worker computes.

Completed rows are written to the shared on-disk cache (when one is
configured) from the parent process, so a repeat run — even a serial one —
is served from disk.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bench.cache import ResultCache
from repro.bench.fig3 import Fig3Row, StudyConfig

#: per-worker-process study, keyed by config (workers reuse calibration)
_WORKER_STUDIES: Dict[StudyConfig, object] = {}


def _compute_row_payload(design_name: str, config: StudyConfig) -> Dict[str, object]:
    """Worker entry point: one design's Fig3 row as a plain dict."""
    from repro.bench.fig3 import Fig3Study

    study = _WORKER_STUDIES.get(config)
    if study is None:
        study = Fig3Study(config=config)
        _WORKER_STUDIES[config] = study
    return study.compute(design_name).to_dict()


#: one shard task: a design name plus the study configuration to run it under
StudyTask = Tuple[str, StudyConfig]


@dataclass
class ShardOutcome:
    """Rows plus scheduling metadata from one sharded run."""

    #: (design, config) -> computed row
    task_rows: Dict[StudyTask, Fig3Row]
    n_workers: int
    wall_time_s: float
    #: per-task wall time as observed from the parent (queue + compute)
    task_times_s: Dict[StudyTask, float] = field(default_factory=dict)

    @property
    def rows(self) -> Dict[str, Fig3Row]:
        """Design-keyed view (single-config runs)."""
        return {design: row for (design, _), row in self.task_rows.items()}


def run_study_tasks(
    tasks: List[StudyTask],
    n_workers: int = 2,
    cache: Optional[ResultCache] = None,
) -> ShardOutcome:
    """Compute one study row per ``(design, config)`` task across a pool.

    ``n_workers <= 1`` (or a single task) degrades to in-process serial
    execution — same results, no pool overhead.  Rows are persisted to
    ``cache`` as they arrive.
    """
    start = time.perf_counter()
    task_rows: Dict[StudyTask, Fig3Row] = {}
    task_times: Dict[StudyTask, float] = {}

    def collect(task: StudyTask, payload: Dict[str, object], t0: float) -> None:
        task_rows[task] = row = Fig3Row.from_dict(payload)
        task_times[task] = time.perf_counter() - t0
        # persist immediately so completed work survives a later task failing
        if cache is not None:
            design, config = task
            cache.put(cache.key(design=design, config=config.as_key()), row.to_dict())

    if n_workers <= 1 or len(tasks) <= 1:
        for task in tasks:
            t0 = time.perf_counter()
            collect(task, _compute_row_payload(*task), t0)
    else:
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            futures = {task: pool.submit(_compute_row_payload, *task) for task in tasks}
            for task, future in futures.items():
                t0 = time.perf_counter()
                collect(task, future.result(), t0)

    return ShardOutcome(
        task_rows=task_rows,
        n_workers=n_workers,
        wall_time_s=time.perf_counter() - start,
        task_times_s=task_times,
    )


def run_sharded(
    design_names: List[str],
    n_workers: int = 2,
    config: StudyConfig = StudyConfig(),
    cache: Optional[ResultCache] = None,
) -> ShardOutcome:
    """Single-config convenience wrapper over :func:`run_study_tasks`."""
    return run_study_tasks(
        [(name, config) for name in design_names], n_workers=n_workers, cache=cache
    )
