"""Quickstart: power-emulate the paper's Fig. 1 binary-search circuit.

Builds the example RTL design, estimates its power with the software RTL
estimator (the baseline that tools like PowerTheater / NEC-RTpower implement),
then enhances it with power-estimation hardware, maps it onto a Virtex-II
emulation platform model and reads the power back from the emulated circuit —
comparing accuracy and (modeled) estimation time.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import InstrumentationConfig, PowerEmulationFlow, compare_reports
from repro.designs import binary_search
from repro.netlist import flatten, module_stats
from repro.power import NEC_RTPOWER, POWERTHEATER, RTLPowerEstimator, build_seed_library


def main() -> None:
    # ------------------------------------------------------------ the design
    module = binary_search.build()
    stats = module_stats(module)
    print("=== design under test ===")
    print(stats.summary())
    print()

    library = build_seed_library()

    # ---------------------------------------------- software RTL power estimate
    testbench = binary_search.testbench(n_searches=32, module=module)
    estimator = RTLPowerEstimator(flatten(module), library=library)
    software_report = estimator.estimate(testbench)
    print("=== software RTL power estimation (baseline) ===")
    print(software_report.table(n=8))
    print()

    # -------------------------------------------------------- power emulation
    flow = PowerEmulationFlow(library=library,
                              config=InstrumentationConfig(coefficient_bits=12))
    nominal_cycles = 1_000_000 * 24          # one million searches
    report = flow.run(
        module,
        binary_search.testbench(n_searches=32, module=module),
        workload_cycles=nominal_cycles,
    )
    print("=== power emulation ===")
    print(report.summary())
    print()
    print(report.power_report.table(n=8))
    print()

    # ----------------------------------------------------------- comparison
    accuracy = compare_reports(report.power_report, software_report)
    print("=== accuracy and speed ===")
    print(accuracy.summary())
    for tool in (NEC_RTPOWER, POWERTHEATER):
        tool_time = tool.estimate_runtime_s(nominal_cycles, report.instrumented.monitored_bits)
        print(
            f"  {tool.name:13s}: {tool_time:9.1f} s for the nominal workload  "
            f"-> emulation speedup {tool_time / report.emulation_time_s:6.1f}x"
        )


if __name__ == "__main__":
    main()
