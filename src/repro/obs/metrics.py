"""Process-wide metrics: labelled counters, gauges, and histograms.

The registry is the single source of truth for operational counters across
the stack (program/kernel builds, cache hits, serve queue depth, task
retries).  Design constraints, in order:

* **Thread-safe** — serve's asyncio loop, the kernel thread pool, and the
  resilience pool's collector thread all touch the registry concurrently.
  Each metric guards its value table with its own lock; the registry lock
  only covers registration.
* **Near-zero cost when disabled** — ``set_metrics_enabled(False)`` turns
  every non-essential update into a single attribute check and return.
  Metrics marked ``essential=True`` (the build counters that back-compat
  module attributes and ``serve`` stats read) keep counting regardless,
  because tests and the coalescing server depend on them.
* **Cross-process mergeable** — counters snapshot to plain dicts so
  forkserver shard workers can ship *deltas* back in their result
  envelopes (see :mod:`repro.resilience.runner`); deltas, not absolutes,
  so warm reused workers never double-count.

Rendering follows the Prometheus text exposition format (0.0.4) so the
serve HTTP frontend can answer ``GET /metrics`` for any scraper.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
]

LabelKey = Tuple[Tuple[str, str], ...]

# Serve job latencies sit in the 10ms..10s range; coalesce group sizes in
# 1..64.  One generic bucket ladder covers both without per-metric tuning.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, math.inf,
)


class MetricError(ValueError):
    """Invalid metric usage: bad name, kind clash, or negative increment."""


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(key: LabelKey, extra: str = "") -> str:
    parts = ['%s="%s"' % (k, _escape_label(v)) for k, v in key]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{%s}" % ",".join(parts)


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Shared plumbing: name/help, per-metric lock, labelled value table."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str,
                 help: str = "", essential: bool = False) -> None:
        self._registry = registry
        self.name = name
        self.help = help
        self.essential = essential
        self._lock = threading.Lock()
        self._values: Dict[LabelKey, object] = {}

    def _recording(self) -> bool:
        return self._registry.enabled or self.essential

    def clear(self) -> None:
        with self._lock:
            self._values.clear()

    def label_keys(self) -> List[LabelKey]:
        with self._lock:
            return sorted(self._values)

    def render(self) -> List[str]:
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing count, optionally labelled."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise MetricError(
                "counter %s cannot decrease (inc %r)" % (self.name, amount))
        if not self._recording():
            return
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount  # type: ignore[operator]

    def value(self, **labels: object) -> float:
        with self._lock:
            return float(self._values.get(_label_key(labels), 0.0))  # type: ignore[arg-type]

    def total(self) -> float:
        """Sum across every label combination (back-compat aliases use this)."""
        with self._lock:
            return float(sum(self._values.values()))  # type: ignore[arg-type]

    def snapshot(self) -> Dict[LabelKey, float]:
        with self._lock:
            return {k: float(v) for k, v in self._values.items()}  # type: ignore[arg-type]

    def merge_delta(self, key: LabelKey, amount: float) -> None:
        if amount <= 0:
            return
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount  # type: ignore[operator]

    def render(self) -> List[str]:
        lines = [
            "# HELP %s %s" % (self.name, self.help or self.name),
            "# TYPE %s counter" % self.name,
        ]
        with self._lock:
            items = sorted(self._values.items())
        if not items:
            items = [((), 0.0)]
        for key, value in items:
            lines.append("%s%s %s" % (
                self.name, _render_labels(key), _format_value(float(value))))  # type: ignore[arg-type]
        return lines


class Gauge(_Metric):
    """A value that can go up and down (queue depth, pool size)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        if not self._recording():
            return
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not self._recording():
            return
        key = _label_key(labels)
        with self._lock:
            self._values[key] = float(self._values.get(key, 0.0)) + amount  # type: ignore[arg-type]

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        with self._lock:
            return float(self._values.get(_label_key(labels), 0.0))  # type: ignore[arg-type]

    def render(self) -> List[str]:
        lines = [
            "# HELP %s %s" % (self.name, self.help or self.name),
            "# TYPE %s gauge" % self.name,
        ]
        with self._lock:
            items = sorted(self._values.items())
        if not items:
            items = [((), 0.0)]
        for key, value in items:
            lines.append("%s%s %s" % (
                self.name, _render_labels(key), _format_value(float(value))))  # type: ignore[arg-type]
        return lines


class _HistogramState:
    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * n_buckets
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    """Distribution with cumulative buckets (latencies, group sizes)."""

    kind = "histogram"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str = "",
                 essential: bool = False,
                 buckets: Optional[Iterable[float]] = None) -> None:
        super().__init__(registry, name, help, essential)
        bounds = tuple(sorted(set(buckets))) if buckets else DEFAULT_BUCKETS
        if not bounds or bounds[-1] != math.inf:
            bounds = bounds + (math.inf,)
        self.buckets = bounds

    def observe(self, value: float, **labels: object) -> None:
        if not self._recording():
            return
        key = _label_key(labels)
        with self._lock:
            state = self._values.get(key)
            if state is None:
                state = self._values[key] = _HistogramState(len(self.buckets))
            assert isinstance(state, _HistogramState)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    state.bucket_counts[i] += 1
                    break
            state.sum += value
            state.count += 1

    def count(self, **labels: object) -> int:
        with self._lock:
            state = self._values.get(_label_key(labels))
            return state.count if isinstance(state, _HistogramState) else 0

    def sum(self, **labels: object) -> float:
        with self._lock:
            state = self._values.get(_label_key(labels))
            return state.sum if isinstance(state, _HistogramState) else 0.0

    def render(self) -> List[str]:
        lines = [
            "# HELP %s %s" % (self.name, self.help or self.name),
            "# TYPE %s histogram" % self.name,
        ]
        with self._lock:
            items = sorted(
                (k, (list(s.bucket_counts), s.sum, s.count))  # type: ignore[union-attr]
                for k, s in self._values.items())
        for key, (bucket_counts, total, count) in items:
            cumulative = 0
            for bound, n in zip(self.buckets, bucket_counts):
                cumulative += n
                le = 'le="%s"' % _format_value(bound)
                lines.append("%s_bucket%s %d" % (
                    self.name, _render_labels(key, le), cumulative))
            lines.append("%s_sum%s %s" % (
                self.name, _render_labels(key), _format_value(total)))
            lines.append("%s_count%s %d" % (
                self.name, _render_labels(key), count))
        return lines


class MetricsRegistry:
    """Name → metric table with get-or-create semantics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}
        self.enabled = True

    # -------------------------------------------------------- registration

    def _get_or_create(self, cls, name: str, help: str, essential: bool,
                       **kwargs) -> _Metric:
        if not name or not name.replace("_", "a").replace(":", "a").isalnum():
            raise MetricError("invalid metric name %r" % (name,))
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(self, name, help, essential, **kwargs)
                self._metrics[name] = metric
            elif type(metric) is not cls:
                raise MetricError(
                    "metric %s already registered as %s, requested %s"
                    % (name, metric.kind, cls.kind))
            return metric

    def counter(self, name: str, help: str = "",
                essential: bool = False) -> Counter:
        return self._get_or_create(Counter, name, help, essential)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "",
              essential: bool = False) -> Gauge:
        return self._get_or_create(Gauge, name, help, essential)  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "", essential: bool = False,
                  buckets: Optional[Iterable[float]] = None) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, essential, buckets=buckets)  # type: ignore[return-value]

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def metrics(self) -> List[_Metric]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    # ------------------------------------------------------------- control

    def set_enabled(self, enabled: bool) -> None:
        self.enabled = bool(enabled)

    def reset(self) -> None:
        """Zero every value; registrations (and cached handles) survive."""
        for metric in self.metrics():
            metric.clear()

    # -------------------------------------------------- cross-process sync

    def counters_snapshot(self) -> Dict[str, Dict[LabelKey, float]]:
        return {
            m.name: m.snapshot()
            for m in self.metrics() if isinstance(m, Counter)
        }

    def counter_deltas(
        self, baseline: Mapping[str, Mapping[LabelKey, float]],
    ) -> Dict[str, Dict[LabelKey, float]]:
        """Per-label counter growth since ``baseline`` (a prior snapshot)."""
        deltas: Dict[str, Dict[LabelKey, float]] = {}
        for name, values in self.counters_snapshot().items():
            before = baseline.get(name, {})
            grown = {
                key: value - before.get(key, 0.0)
                for key, value in values.items()
                if value > before.get(key, 0.0)
            }
            if grown:
                deltas[name] = grown
        return deltas

    def merge_counter_deltas(
        self, deltas: Mapping[str, Mapping[LabelKey, float]],
    ) -> None:
        for name, values in deltas.items():
            metric = self.get(name)
            if metric is None:
                metric = self.counter(name)
            if not isinstance(metric, Counter):
                continue
            for key, amount in values.items():
                metric.merge_delta(tuple(tuple(pair) for pair in key), amount)

    # ----------------------------------------------------------- rendering

    def render_prometheus(self) -> str:
        lines: List[str] = []
        for metric in self.metrics():
            lines.extend(metric.render())
        return "\n".join(lines) + "\n" if lines else ""
