"""Tests for the software RTL estimator, the gate-level baseline and reports."""

from __future__ import annotations

import pytest

from repro.netlist import NetlistBuilder, flatten
from repro.power import (
    CB130M_TECHNOLOGY,
    GateLevelPowerEstimator,
    NEC_RTPOWER,
    POWERTHEATER,
    RTLPowerEstimator,
    build_seed_library,
    calibrate_tool,
)
from repro.sim import RandomTestbench, VectorTestbench


def build_small_datapath():
    """8-bit multiply-accumulate with an output register."""
    b = NetlistBuilder("small_datapath")
    a = b.input("a", 8)
    x = b.input("x", 8)
    en = b.input("en", 1)
    product = b.mul(a, x, name="mult")
    acc = b.accumulator("acc", 20)
    b.drive("acc", d=b.zext(product, 20), en=en, clear=b.const(0, 1))
    out = b.pipe(acc, name="out_reg")
    b.output("result", out)
    return flatten(b.build())


@pytest.fixture(scope="module")
def datapath():
    return build_small_datapath()


@pytest.fixture(scope="module")
def rtl_report(datapath):
    estimator = RTLPowerEstimator(datapath)
    return estimator.estimate(RandomTestbench(200, seed=11))


def test_rtl_estimator_produces_consistent_report(rtl_report):
    assert rtl_report.cycles == 200
    assert rtl_report.total_energy_fj > 0
    assert rtl_report.average_power_mw > 0
    assert rtl_report.peak_power_mw >= rtl_report.average_power_mw
    # per-component energies add up to the total
    assert sum(c.energy_fj for c in rtl_report.components.values()) == pytest.approx(
        rtl_report.total_energy_fj
    )
    # per-cycle trace adds up to the total too
    assert sum(rtl_report.cycle_energy_fj) == pytest.approx(rtl_report.total_energy_fj)
    assert rtl_report.estimation_time_s > 0


def test_rtl_estimator_component_breakdown(rtl_report):
    assert "mult" in rtl_report.components
    by_type = rtl_report.energy_by_type()
    assert by_type.get("multiplier", 0) > 0
    top = rtl_report.top_consumers(3)
    assert len(top) == 3
    assert top[0].energy_fj >= top[1].energy_fj
    assert 0.0 <= rtl_report.component_share("mult") <= 1.0
    assert "small_datapath" in rtl_report.table()


def test_rtl_estimator_activity_sensitivity(datapath):
    """A busy stimulus consumes more power than an idle one."""
    estimator = RTLPowerEstimator(datapath)
    idle = estimator.estimate(VectorTestbench([{"a": 0, "x": 0, "en": 0}] * 100))
    busy = estimator.estimate(RandomTestbench(100, seed=3))
    assert busy.average_power_mw > idle.average_power_mw
    # idle power is not zero: register clock power remains
    assert idle.average_power_mw > 0


def test_rtl_estimator_deterministic(datapath):
    e1 = RTLPowerEstimator(datapath).estimate(RandomTestbench(50, seed=5))
    e2 = RTLPowerEstimator(datapath).estimate(RandomTestbench(50, seed=5))
    assert e1.total_energy_fj == pytest.approx(e2.total_energy_fj)


def test_rtl_estimator_rejects_hierarchical_module():
    from repro.netlist.module import Module

    child = build_small_datapath()
    parent = Module("p")
    a = parent.add_input("a", 8)
    x = parent.add_input("x", 8)
    en = parent.add_input("en", 1)
    r = parent.add_net("r", 20)
    parent.add_instance("u", child, {"a": a, "x": x, "en": en, "result": r})
    with pytest.raises(ValueError, match="hierarchical"):
        RTLPowerEstimator(parent)


def test_model_for_lookup(datapath):
    estimator = RTLPowerEstimator(datapath)
    assert estimator.model_for("mult").component_type == "multiplier"
    with pytest.raises(KeyError):
        estimator.model_for("nonexistent")


def test_gate_level_estimator_agrees_in_trend(datapath):
    """The gate-level baseline tracks the same activity trends, slower."""
    library = build_seed_library()
    rtl = RTLPowerEstimator(datapath, library=library)
    gate = GateLevelPowerEstimator(datapath, library=library)
    tb_idle = VectorTestbench([{"a": 0, "x": 0, "en": 0}] * 40)
    tb_busy = RandomTestbench(40, seed=9)
    gate_idle = gate.estimate(tb_idle)
    gate_busy = gate.estimate(tb_busy)
    assert gate_busy.average_power_mw > gate_idle.average_power_mw
    assert gate_busy.notes["n_gate_mapped"] >= 2
    # and it really is slower per cycle than the RTL estimator
    rtl_busy = rtl.estimate(RandomTestbench(40, seed=9))
    assert gate_busy.estimation_time_s > rtl_busy.estimation_time_s


def test_report_relative_error(rtl_report, datapath):
    other = RTLPowerEstimator(datapath).estimate(RandomTestbench(200, seed=11))
    assert rtl_report.relative_error_to(other) == pytest.approx(0.0, abs=1e-9)


def test_commercial_tool_models():
    t = POWERTHEATER.estimate_runtime_s(n_cycles=100_000, monitored_bits=2_000)
    assert t > POWERTHEATER.setup_time_s
    # more signals -> more time
    assert POWERTHEATER.estimate_runtime_s(100_000, 4_000) > t
    assert NEC_RTPOWER.throughput_cycles_per_s(2_000) > 0
    with pytest.raises(ValueError):
        POWERTHEATER.estimate_runtime_s(-1, 10)


def test_commercial_tool_calibration():
    calibrated = calibrate_tool(POWERTHEATER, n_cycles=1_000_000, monitored_bits=4_000,
                                target_runtime_s=2580.0)
    assert calibrated.estimate_runtime_s(1_000_000, 4_000) == pytest.approx(2580.0)
    with pytest.raises(ValueError):
        calibrate_tool(POWERTHEATER, 10, 10, target_runtime_s=1.0)
    with pytest.raises(ValueError):
        calibrate_tool(POWERTHEATER, 0, 10, target_runtime_s=100.0)


def test_technology_conversions():
    tech = CB130M_TECHNOLOGY
    assert tech.clock_period_ns == pytest.approx(5.0)
    power = tech.energy_to_power_mw(1000.0)
    assert tech.power_to_energy_fj(power) == pytest.approx(1000.0)
    faster = tech.scaled(400.0)
    assert faster.clock_mhz == 400.0
    assert faster.energy_to_power_mw(1000.0) == pytest.approx(2 * power)
