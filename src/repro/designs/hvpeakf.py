"""HVPeakF: a peaking (sharpening) image filter.

A streaming datapath that enhances high-frequency content of a pixel stream:

    high  = 2*x[n-1] - x[n] - x[n-2]          (discrete Laplacian)
    y     = clamp( x[n-1] + (GAIN * high) >> SHIFT, 0, 255 )

One pixel is accepted per cycle when ``valid`` is high; the filtered pixel
appears two cycles later with ``valid_out`` asserted.  The structure (delay
line registers, constant multiplier, adder tree, saturator) mirrors the kind
of video peaking filters used in display pipelines.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.netlist.builder import NetlistBuilder
from repro.netlist.module import Module
from repro.netlist.signals import to_signed
from repro.sim.testbench import Testbench
from repro.designs import stimuli

#: peaking gain and normalization shift: y = center + (GAIN * high) >> SHIFT
GAIN = 3
SHIFT = 3
PIXEL_WIDTH = 8
#: internal signed arithmetic width
WORK_WIDTH = 14


def reference_filter(pixels: Sequence[int]) -> List[int]:
    """Software reference of the streaming filter (one output per input pixel).

    Output ``i`` corresponds to input pixel ``i-1`` (one pixel of latency in
    the window); the first two outputs are warm-up values.
    """
    outputs: List[int] = []
    d1 = d2 = 0
    for x in pixels:
        high = 2 * d1 - x - d2
        y = d1 + ((GAIN * high) >> SHIFT)
        outputs.append(max(0, min(255, y)))
        d2, d1 = d1, x
    return outputs


def build() -> Module:
    """Build the streaming peaking filter."""
    b = NetlistBuilder("HVPeakF")
    pixel = b.input("pixel", PIXEL_WIDTH)
    valid = b.input("valid", 1)

    # delay line x[n], x[n-1], x[n-2]
    d1 = b.register("reg_d1", PIXEL_WIDTH, has_enable=True)
    d2 = b.register("reg_d2", PIXEL_WIDTH, has_enable=True)
    b.drive("reg_d1", d=pixel, en=valid)
    b.drive("reg_d2", d=d1, en=valid)

    # Laplacian: 2*d1 - pixel - d2 (signed working width)
    x0 = b.zext(pixel, WORK_WIDTH)
    x1 = b.zext(d1, WORK_WIDTH)
    x2 = b.zext(d2, WORK_WIDTH)
    twice_center = b.shl(x1, 1, name="center_x2")
    high1 = b.sub(twice_center, x0, name="lap_sub1")
    high = b.sub(high1, x2, name="lap_sub2")

    # gain multiply and normalize (arithmetic shift keeps the sign)
    boosted = b.mul(high, b.const(GAIN, 4, name="const_gain"), width_y=WORK_WIDTH + 4,
                    signed=True, name="gain_mult")
    scaled = b.shr(boosted, SHIFT, arithmetic=True, name="gain_shift")

    # add back to the (delayed) center pixel and clamp to the 0..255 pixel range
    enhanced = b.add(scaled, b.zext(x1, WORK_WIDTH + 4), name="recombine")
    sign = b.bit(enhanced, WORK_WIDTH + 3, name="clamp_sign")
    overflow_bits = b.slice(enhanced, WORK_WIDTH + 2, PIXEL_WIDTH, name="clamp_high")
    overflow = b.and_(b.not_(sign, name="clamp_pos"),
                      b.reduce("or", overflow_bits, name="clamp_any"), name="clamp_over")
    low_bits = b.slice(enhanced, PIXEL_WIDTH - 1, 0, name="clamp_low")
    upper_sel = b.mux(overflow, low_bits, b.const(255, PIXEL_WIDTH, name="const_max"),
                      name="clamp_mux_hi")
    clamped = b.mux(sign, upper_sel, b.const(0, PIXEL_WIDTH, name="const_min"),
                    name="clamp_mux")

    # output pipeline registers
    out_q = b.register("reg_out", PIXEL_WIDTH, has_enable=True)
    valid_q = b.pipe(valid, name="reg_valid")
    b.drive("reg_out", d=clamped, en=valid)

    b.output("pixel_out", out_q)
    b.output("valid_out", valid_q)

    module = b.build()
    module.attributes["description"] = "peaking (sharpening) image filter"
    return module


class PeakingFilterTestbench(Testbench):
    """Streams pixels and checks the output against the software reference."""

    def __init__(self, pixels: Sequence[int], name: str = "hvpeakf_tb") -> None:
        super().__init__(name)
        self.pixels = list(pixels)
        self.expected = reference_filter(self.pixels)
        self.max_cycles = len(self.pixels) + 4
        self._checked = 0

    def drive(self, cycle: int, simulator):
        if cycle < len(self.pixels):
            return {"pixel": self.pixels[cycle], "valid": 1}
        return {"valid": 0}

    def check(self, cycle: int, simulator) -> None:
        # output for input pixel k appears one cycle later (registered output)
        if simulator.get_output("valid_out") and 1 <= cycle <= len(self.pixels):
            expected = self.expected[cycle - 1]
            actual = simulator.get_output("pixel_out")
            assert actual == expected, (
                f"pixel {cycle - 1}: expected {expected}, got {actual}"
            )
            self._checked += 1

    def finished(self, cycle: int, simulator) -> bool:
        return cycle + 1 >= len(self.pixels) + 2

    def captured(self):
        return {"pixels_checked": self._checked}


def testbench(n_pixels: int = 600, seed: int = 5) -> PeakingFilterTestbench:
    """Standard stimulus: a pseudo-random pixel stream."""
    return PeakingFilterTestbench(stimuli.random_pixels(n_pixels, seed=seed))
