"""Combinational levelization (static scheduling) for the cycle simulator.

A flat module's components are split into:

* *state sources* — sequential components whose outputs depend only on their
  internal state (registers, FSMs, synchronous-read memories); their outputs
  are produced before any combinational evaluation,
* *combinationally evaluated* components — everything with an input→output
  combinational path, ordered topologically so a single pass per cycle
  suffices.
"""

from __future__ import annotations

import weakref
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List

from repro.netlist.components import Component
from repro.netlist.module import Module
from repro.netlist.nets import Net


class SchedulingError(Exception):
    """Raised when the combinational network cannot be ordered (cycle present)."""


@dataclass
class Schedule:
    """Static evaluation schedule for one module."""

    #: sequential components with purely registered outputs, evaluated first
    state_sources: List[Component] = field(default_factory=list)
    #: combinational (and combinational-through sequential) components, in order
    ordered: List[Component] = field(default_factory=list)
    #: all sequential components (clocked at the end of the cycle)
    sequential: List[Component] = field(default_factory=list)
    #: logic depth (number of levels) of the combinational network
    depth: int = 0


def levelize(module: Module) -> Schedule:
    """Build the static evaluation schedule for a flat module."""
    if module.is_hierarchical:
        raise SchedulingError(
            f"module {module.name!r} is hierarchical; flatten() it before simulation"
        )

    schedule = Schedule()
    comb: List[Component] = []
    for component in module.components.values():
        if component.is_sequential:
            schedule.sequential.append(component)
        if component.has_comb_path:
            comb.append(component)
        elif component.is_sequential or component.type_name == "constant":
            schedule.state_sources.append(component)

    # Map each net to the combinational component driving it (if any).
    driven_by: Dict[Net, Component] = {}
    for component in comb:
        for net in component.output_nets():
            driven_by[net] = component

    successors: Dict[Component, List[Component]] = {c: [] for c in comb}
    indegree: Dict[Component, int] = {c: 0 for c in comb}
    for component in comb:
        for net in component.input_nets():
            producer = driven_by.get(net)
            if producer is not None and producer is not component:
                successors[producer].append(component)
                indegree[component] += 1

    level: Dict[Component, int] = {}
    queue = deque(sorted((c for c, d in indegree.items() if d == 0), key=lambda c: c.name))
    for component in queue:
        level[component] = 0
    while queue:
        current = queue.popleft()
        schedule.ordered.append(current)
        for succ in successors[current]:
            indegree[succ] -= 1
            level[succ] = max(level.get(succ, 0), level[current] + 1)
            if indegree[succ] == 0:
                queue.append(succ)

    if len(schedule.ordered) != len(comb):
        unresolved = sorted(c.name for c, d in indegree.items() if d > 0)
        raise SchedulingError(
            "combinational loop detected; unresolved components: "
            + ", ".join(unresolved[:10])
        )
    schedule.depth = (max(level.values()) + 1) if level else 0
    return schedule


#: module -> ((n_components, n_nets), schedule); weak so modules can be freed
_SCHEDULE_CACHE: "weakref.WeakKeyDictionary[Module, tuple]" = weakref.WeakKeyDictionary()


def module_mutation_key(module: Module) -> tuple:
    """Staleness key shared by the schedule and compiled-program caches.

    An identity fingerprint of the module's structure: every component, every
    net, and every port connection.  Additions, removals, swaps at constant
    count and rewires all change it.  Cached entries hold strong references
    to the fingerprinted objects (schedules reference components, programs
    reference nets), so a cached key's ids cannot be recycled onto new
    objects while the entry is alive.  Building it is O(ports) — negligible
    next to re-levelizing, which is what a key mismatch triggers.
    """
    parts = [id(net) for net in module.nets.values()]
    for component in module.components.values():
        parts.append(id(component))
        parts.extend(id(port.net) for port in component.ports.values())
    return tuple(parts)


def schedule_for(module: Module) -> Schedule:
    """Per-process cached :func:`levelize`.

    Registry designs are re-simulated dozens of times across the benchmark
    suite; the cache makes levelization a once-per-module cost.  The cache is
    invalidated when the module's component/net counts change (the only
    supported post-simulation mutation pattern); modules rewired in place at
    constant size should call :func:`levelize` directly.
    """
    key = module_mutation_key(module)
    entry = _SCHEDULE_CACHE.get(module)
    if entry is not None and entry[0] == key:
        return entry[1]
    schedule = levelize(module)
    try:
        _SCHEDULE_CACHE[module] = (key, schedule)
    except TypeError:  # pragma: no cover - unweakrefable module subclass
        pass
    return schedule
