"""Power emulation — the paper's primary contribution.

The observation behind the paper is that the functions needed for power
estimation (power-model evaluation, strobing, aggregation) can themselves be
implemented as hardware and attached to the design under test, so that an
FPGA emulation run produces power numbers as a side effect of executing the
testbench at hardware speed.

This package implements that idea end to end:

* :mod:`repro.core.fixedpoint` — fixed-point quantization of macromodel
  coefficients (hardware power models cannot carry floats),
* :mod:`repro.core.power_model_hw` — the synthesizable per-component power
  model (value queues, XOR transition detection, coefficient dot product),
* :mod:`repro.core.strobe` — the power strobe generator (one per clock domain),
* :mod:`repro.core.aggregator` — the power aggregator accumulating the
  design's total power,
* :mod:`repro.core.instrument` — the instrumentation pass that enhances an
  RTL design with the above (the paper's Fig. 1),
* :mod:`repro.core.fpga` — Virtex-II-class FPGA device capacity models,
* :mod:`repro.core.synthesis` — LUT/FF/BRAM resource and timing estimation,
* :mod:`repro.core.emulator` — the emulation platform model (download,
  execute at hardware speed, read back power),
* :mod:`repro.core.flow` — the end-to-end power-emulation design flow
  (the paper's Fig. 2),
* :mod:`repro.core.accuracy` — emulation-vs-software accuracy comparison
  utilities.
"""

from repro.core.fixedpoint import FixedPointFormat, quantize_coefficients
from repro.core.power_model_hw import HardwarePowerModel
from repro.core.strobe import PowerStrobeGenerator
from repro.core.aggregator import PowerAggregator
from repro.core.instrument import (
    InstrumentationConfig,
    InstrumentedDesign,
    instrument,
)
from repro.core.fpga import FPGADevice, VIRTEX2_DEVICES, smallest_fitting_device
from repro.core.synthesis import ResourceEstimate, SynthesisEstimator
from repro.core.emulator import (
    EmulationPlatform,
    EmulationTimeBreakdown,
    EmulationResult,
    HostInterface,
)
from repro.core.flow import PowerEmulationFlow, FlowReport
from repro.core.accuracy import AccuracyResult, compare_reports, sweep_coefficient_bits

__all__ = [
    "FixedPointFormat",
    "quantize_coefficients",
    "HardwarePowerModel",
    "PowerStrobeGenerator",
    "PowerAggregator",
    "InstrumentationConfig",
    "InstrumentedDesign",
    "instrument",
    "FPGADevice",
    "VIRTEX2_DEVICES",
    "smallest_fitting_device",
    "ResourceEstimate",
    "SynthesisEstimator",
    "EmulationPlatform",
    "EmulationTimeBreakdown",
    "EmulationResult",
    "HostInterface",
    "PowerEmulationFlow",
    "FlowReport",
    "AccuracyResult",
    "compare_reports",
    "sweep_coefficient_bits",
]
