"""Native (C via cffi) code generator for the kernel IR.

Prints a :class:`~repro.sim.kernels.ir.KernelIR` as one C translation unit,
compiles it with the system C compiler (``cc``/``gcc``/``clang``, override
with ``REPRO_KERNEL_CC``) and binds it through :mod:`cffi` in ABI mode.
Compiled shared objects are cached per source hash, so every structurally
identical module compiles exactly once per process.

Loop structure: lanes are processed in strip-mined blocks of
:data:`BLOCK_LANES`; within a block, each IR statement is its own short
fixed-bound loop over the block (auto-vectorized by the compiler), and SSA
temporaries live in a block-sized scratch buffer that stays cache-resident.
This keeps the value-store accesses streaming (contiguous row segments)
instead of striding lane-by-lane across the whole ``(n_slots, n_lanes)``
store — the layout that makes the per-op NumPy path memory-bound — while
eliminating all per-op interpreter dispatch.

Lane blocks are also the multi-core unit: blocks touch disjoint lanes of
every row, state array and memory column, so splitting them across threads
cannot reorder or race any lane's arithmetic — results are bit-identical to
single-threaded execution by construction.  Each generated entry point takes
a thread count ``nt`` and fans blocks out over OpenMP (when the compiler
accepts ``-fopenmp``) or a persistent hand-rolled pthread pool baked into the
generated C (when only ``-pthread`` works); with neither, ``nt`` is ignored
and the strip-mine runs serially.  Every thread gets its own scratch slice,
and cffi releases the GIL around the call, so Python-side work can overlap.
``REPRO_KERNEL_THREADING`` forces a tier (``omp``/``pthread``/``serial``)
for tests and triage.

Correctness notes:

* signed arithmetic is compiled with ``-fwrapv`` so int64 overflow wraps
  exactly like NumPy's,
* sequential state is read from and written to the *live* holder arrays
  (captured as stable pointers — holder resets are in-place), so kernels
  interoperate with lane views, memory backdoors and ``reset_state``,
* within one lane, all captures execute before all commits (statement order
  is preserved from the lane program), so the two-phase clock-edge semantics
  hold lane by lane — and blocks only ever touch their own lanes.

When no C compiler is available, callers fall back to the NumPy kernel
backend (see :func:`repro.sim.kernels.compile_kernel`).
"""

from __future__ import annotations

import atexit
import hashlib
import os
import shutil
import subprocess
import tempfile
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sim.kernels.ir import (
    Abs, Bin, Const, KernelIR, Lane, MemRead, MemWrite, Min, Popcount,
    Select, SetSlot, SetState, SetTemp, SlotRef, StateRef, Stmt, Table,
    TempRef, Unary, Where, BOOL,
)


class NativeToolchainError(Exception):
    """No usable C compiler, or the generated kernel failed to compile."""


#: numpy store dtype -> C element type of the value store
_ELEM_TYPES = {"int64": "long long", "int8": "signed char"}

#: lanes per strip-mined block: large enough to vectorize and amortize loop
#: overhead, small enough that a block's touched row segments stay in cache
BLOCK_LANES = 128

#: C sources above this size skip the host-ISA vectorization flags — the
#: compile-time blowup on thousands of loops outweighs the runtime gain
_VECTORIZE_MAX_LINES = 500

#: environment override for the threading tier ("omp"/"pthread"/"serial")
KERNEL_THREADING_ENV = "REPRO_KERNEL_THREADING"

#: threading tier -> extra compile flags
_THREADING_FLAGS = {
    "omp": ["-fopenmp", "-DREPRO_KERNEL_OMP"],
    "pthread": ["-pthread", "-DREPRO_KERNEL_PTHREADS"],
    "serial": [],
}

#: probed threading tier of the host toolchain (None = not probed yet)
_THREADING_MODE: Optional[str] = None


def threading_mode() -> str:
    """The threading tier the native kernels compile with on this host.

    Probes the compiler once per process: ``omp`` when a tiny OpenMP
    translation unit compiles with ``-fopenmp``, else ``pthread`` when
    ``-pthread`` works, else ``serial``.  ``REPRO_KERNEL_THREADING`` forces a
    tier (useful for exercising the pthread pool on an OpenMP toolchain).
    """
    global _THREADING_MODE
    override = os.environ.get(KERNEL_THREADING_ENV)
    if override:
        if override not in _THREADING_FLAGS:
            raise ValueError(
                f"unknown {KERNEL_THREADING_ENV} value {override!r}; expected "
                f"one of {', '.join(_THREADING_FLAGS)}"
            )
        return override
    if _THREADING_MODE is not None:
        return _THREADING_MODE
    compiler = find_compiler()
    if compiler is None:
        _THREADING_MODE = "serial"
        return _THREADING_MODE
    probes = (
        ("omp", "#include <omp.h>\nint repro_probe(void){return omp_get_max_threads();}\n"),
        ("pthread", "#include <pthread.h>\nstatic pthread_mutex_t m = PTHREAD_MUTEX_INITIALIZER;\n"
                    "int repro_probe(void){return pthread_mutex_lock(&m) == 0;}\n"),
    )
    directory = _build_dir()
    mode = "serial"
    for candidate, source in probes:
        c_path = os.path.join(directory, f"probe_{candidate}.c")
        so_path = os.path.join(directory, f"probe_{candidate}.so")
        with open(c_path, "w") as handle:
            handle.write(source)
        result = subprocess.run(
            [compiler, *(f for f in _THREADING_FLAGS[candidate] if not f.startswith("-D")),
             "-fPIC", "-shared", c_path, "-o", so_path],
            capture_output=True, text=True,
        )
        if result.returncode == 0:
            mode = candidate
            break
    _THREADING_MODE = mode
    return mode


def find_compiler() -> Optional[str]:
    """Path of the C compiler to use, or None when the host has none.

    ``REPRO_KERNEL_CC`` overrides discovery; pointing it at a nonexistent
    command disables the native backend (useful for testing the fallback).
    """
    override = os.environ.get("REPRO_KERNEL_CC")
    if override:
        return shutil.which(override)
    for candidate in ("cc", "gcc", "clang"):
        path = shutil.which(candidate)
        if path:
            return path
    return None


# ---------------------------------------------------------------------------
# C printing.
# ---------------------------------------------------------------------------


def _temp_index(name: str) -> int:
    return int(name[1:]) - 1  # SSA temps are named t1, t2, ...


def _e(x) -> str:
    if isinstance(x, Const):
        return f"({x.value}LL)"
    if isinstance(x, Lane):
        return "(l0 + i)"
    if isinstance(x, SlotRef):
        return f"((i64)v[(i64){x.slot} * L + l0 + i])"
    if isinstance(x, StateRef):
        return f"S[{x.row}][l0 + i]"
    if isinstance(x, TempRef):
        return f"W[{_temp_index(x.name)} * B + i]"
    if isinstance(x, Table):
        return f"T{x.table}[{_e(x.index)}]"
    if isinstance(x, MemRead):
        return f"M[{x.mem}][({_e(x.addr)}) * L + l0 + i]"
    if isinstance(x, Unary):
        if x.op == "neg":
            return f"(-({_e(x.a)}))"
        return f"(!({_e(x.a)}))" if x.ty == BOOL else f"(~({_e(x.a)}))"
    if isinstance(x, Bin):
        return f"(({_e(x.a)}) {x.op} ({_e(x.b)}))"
    if isinstance(x, Where):
        return f"(({_e(x.cond)}) ? ({_e(x.a)}) : ({_e(x.b)}))"
    if isinstance(x, Min):
        a, b = _e(x.a), _e(x.b)
        return f"(({a}) < ({b}) ? ({a}) : ({b}))"
    if isinstance(x, Abs):
        a = _e(x.a)
        return f"(({a}) < 0 ? -({a}) : ({a}))"
    if isinstance(x, Popcount):
        return f"((i64)__builtin_popcountll((unsigned long long)({_e(x.a)})))"
    if isinstance(x, Select):
        out = _e(x.choices[-1])
        index = _e(x.index)
        for i in range(len(x.choices) - 2, -1, -1):
            out = f"(({index}) == {i} ? ({_e(x.choices[i])}) : {out})"
        return out
    raise TypeError(f"unprintable IR node {x!r}")


def _statement(stmt: Stmt) -> str:
    """One IR statement as its own vectorizable loop over the lane block."""
    loop = "for (i64 i = 0; i < nb; ++i) "
    if isinstance(stmt, SetTemp):
        body = f"W[{_temp_index(stmt.name)} * B + i] = {_e(stmt.expr)};"
    elif isinstance(stmt, SetSlot):
        body = f"v[(i64){stmt.slot} * L + l0 + i] = {_e(stmt.expr)};"
    elif isinstance(stmt, SetState):
        body = f"S[{stmt.row}][l0 + i] = {_e(stmt.expr)};"
    elif isinstance(stmt, MemWrite):
        body = (
            f"if ({_e(stmt.enable)}) "
            f"{{ M[{stmt.mem}][({_e(stmt.addr)}) * L + l0 + i] = {_e(stmt.data)}; }}"
        )
    else:
        raise TypeError(f"unprintable IR statement {stmt!r}")
    return loop + "{ " + body + " }"


def scratch_rows(ir: KernelIR) -> int:
    """Rows of block-sized scratch the kernel's SSA temporaries need."""
    rows = 0
    for stmts in ir.phases.values():
        for stmt in stmts:
            if isinstance(stmt, SetTemp):
                rows = max(rows, _temp_index(stmt.name) + 1)
    return rows


#: per-.so scaffolding shared by every generated kernel: the pthread-pool
#: tier parks persistent workers on a condvar; the per-call arguments are
#: broadcast under the pool lock and each participant runs a static stripe of
#: lane blocks (block b -> thread b % nt), so block assignment — and thus the
#: result, since blocks touch disjoint lanes — is deterministic
_RUNTIME_PREAMBLE = """\
#if defined(REPRO_KERNEL_OMP)
#include <omp.h>
#endif
#if defined(REPRO_KERNEL_PTHREADS)
#include <pthread.h>
#include <stdint.h>
typedef void (*block_fn)(elem *restrict, i64 *const *, i64 *const *,
                         i64 *restrict, i64, i64);
static pthread_mutex_t pool_lock = PTHREAD_MUTEX_INITIALIZER;
static pthread_cond_t pool_work_cv = PTHREAD_COND_INITIALIZER;
static pthread_cond_t pool_done_cv = PTHREAD_COND_INITIALIZER;
static i64 pool_spawned = 0, pool_generation = 0, pool_pending = 0;
static block_fn pool_fn;
static elem *pool_v;
static i64 *const *pool_S;
static i64 *const *pool_M;
static i64 *pool_W;
static i64 pool_L, pool_nt;

static void pool_span(block_fn fn, elem *restrict v, i64 *const *S,
                      i64 *const *M, i64 *restrict W, i64 L, i64 nt, i64 tid)
{
    const i64 nblocks = (L + B - 1) / B;
    i64 *restrict Wt = W + tid * (i64)SCRATCH_ROWS * B;
    for (i64 b = tid; b < nblocks; b += nt)
        fn(v, S, M, Wt, L, b * B);
}

static void *pool_worker(void *arg)
{
    const i64 tid = (i64)(intptr_t)arg;
    i64 seen = 0;
    pthread_mutex_lock(&pool_lock);
    for (;;) {
        while (pool_generation == seen)
            pthread_cond_wait(&pool_work_cv, &pool_lock);
        seen = pool_generation;
        {
            block_fn fn = pool_fn;
            elem *v = pool_v;
            i64 *const *S = pool_S;
            i64 *const *M = pool_M;
            i64 *W = pool_W;
            i64 L = pool_L, nt = pool_nt;
            pthread_mutex_unlock(&pool_lock);
            if (tid < nt)
                pool_span(fn, v, S, M, W, L, nt, tid);
        }
        pthread_mutex_lock(&pool_lock);
        if (--pool_pending == 0)
            pthread_cond_signal(&pool_done_cv);
    }
    return 0;
}

static void pool_child_reset(void)
{
    /* fork() copies the pool's bookkeeping but not its worker threads; a
       child that trusted pool_spawned would broadcast work nobody runs and
       wait on pool_done_cv forever.  Reset so the child respawns lazily. */
    pthread_mutex_init(&pool_lock, 0);
    pthread_cond_init(&pool_work_cv, 0);
    pthread_cond_init(&pool_done_cv, 0);
    pool_spawned = 0;
    pool_generation = 0;
    pool_pending = 0;
}

static pthread_once_t pool_fork_once = PTHREAD_ONCE_INIT;
static void pool_register_fork(void) { pthread_atfork(0, 0, pool_child_reset); }

static void pool_run(block_fn fn, elem *restrict v, i64 *const *S,
                     i64 *const *M, i64 *restrict W, i64 L, i64 nt)
{
    pthread_once(&pool_fork_once, pool_register_fork);
    pthread_mutex_lock(&pool_lock);
    while (pool_spawned < nt - 1) {
        pthread_t thread;
        if (pthread_create(&thread, 0, pool_worker,
                           (void *)(intptr_t)(pool_spawned + 1)) != 0)
            break;
        pthread_detach(thread);
        pool_spawned += 1;
    }
    if (nt > pool_spawned + 1)
        nt = pool_spawned + 1;  /* thread creation failed: shrink, stay correct */
    pool_fn = fn; pool_v = v; pool_S = S; pool_M = M; pool_W = W;
    pool_L = L; pool_nt = nt;
    pool_pending = pool_spawned;
    pool_generation += 1;
    pthread_cond_broadcast(&pool_work_cv);
    pthread_mutex_unlock(&pool_lock);

    pool_span(fn, v, S, M, W, L, nt, 0);

    pthread_mutex_lock(&pool_lock);
    while (pool_pending != 0)
        pthread_cond_wait(&pool_done_cv, &pool_lock);
    pthread_mutex_unlock(&pool_lock);
}
#endif
"""


def generate_c_source(ir: KernelIR) -> str:
    """The complete C translation unit for one extracted lane program."""
    elem = _ELEM_TYPES[ir.dtype]
    lines: List[str] = [
        "typedef long long i64;",
        f"typedef {elem} elem;",
        f"enum {{ B = {BLOCK_LANES}, SCRATCH_ROWS = {scratch_rows(ir)} }};",
        "",
        _RUNTIME_PREAMBLE,
    ]
    for index, table in enumerate(ir.tables):
        values = ", ".join(f"{int(value)}LL" for value in table)
        lines.append(f"static const i64 T{index}[{len(table)}] = {{{values}}};")
    if ir.tables:
        lines.append("")

    bodies: Dict[str, List[str]] = {
        phase: [_statement(stmt) for stmt in stmts]
        for phase, stmts in ir.phases.items()
    }
    if set(bodies) >= {"settle", "clock_edge"}:
        # the fused form: lanes are independent, so running a block's whole
        # cycle (settle then edge) before the next block's is equivalent
        bodies["cycle"] = bodies["settle"] + bodies["clock_edge"]

    for name, body in bodies.items():
        # one block's worth of the phase: the serial strip-mine, the OpenMP
        # loop and the pthread stripes all dispatch through this function
        lines.append(
            f"static void {name}_block(elem *restrict v, i64 *const *S, "
            f"i64 *const *M, i64 *restrict W, i64 L, i64 l0)"
        )
        lines.append("{")
        lines.append("    const i64 nb = (L - l0) < B ? (L - l0) : B;")
        lines.extend(f"    {line}" for line in body)
        lines.append("    (void)S; (void)M; (void)W; (void)nb;")
        lines.append("}")
        lines.append("")
        lines.append(
            f"void {name}(elem *restrict v, i64 *const *S, i64 *const *M, "
            f"i64 *restrict W, i64 L, i64 nt)"
        )
        lines.append("{")
        lines.append("#if defined(REPRO_KERNEL_OMP)")
        lines.append("    if (nt > 1) {")
        lines.append("        const i64 nblocks = (L + B - 1) / B;")
        lines.append("        #pragma omp parallel for schedule(static) "
                     "num_threads((int)nt)")
        lines.append("        for (i64 b = 0; b < nblocks; ++b)")
        lines.append(
            f"            {name}_block(v, S, M, W + (i64)omp_get_thread_num() "
            f"* (i64)SCRATCH_ROWS * B, L, b * B);"
        )
        lines.append("        return;")
        lines.append("    }")
        lines.append("#elif defined(REPRO_KERNEL_PTHREADS)")
        lines.append(f"    if (nt > 1) {{ pool_run({name}_block, v, S, M, W, L, nt); return; }}")
        lines.append("#endif")
        lines.append("    (void)nt;")
        lines.append("    for (i64 l0 = 0; l0 < L; l0 += B)")
        lines.append(f"        {name}_block(v, S, M, W, L, l0);")
        lines.append("}")
        lines.append("")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Compilation + binding.
# ---------------------------------------------------------------------------

#: sha1(source) -> (ffi, dlopened lib); one compile per structure per process
_LIB_CACHE: Dict[str, Tuple[object, object]] = {}
_BUILD_DIR: Optional[str] = None


def _build_dir() -> str:
    global _BUILD_DIR
    if _BUILD_DIR is None:
        _BUILD_DIR = tempfile.mkdtemp(prefix="repro-lane-kernels-")
        atexit.register(shutil.rmtree, _BUILD_DIR, ignore_errors=True)
    return _BUILD_DIR


def _compile_library(source: str, ir: KernelIR):
    mode = threading_mode()
    key = hashlib.sha1(f"{mode}\n{source}".encode()).hexdigest()
    cached = _LIB_CACHE.get(key)
    if cached is not None:
        return cached

    compiler = find_compiler()
    if compiler is None:
        raise NativeToolchainError(
            "no C compiler found (set REPRO_KERNEL_CC or install cc/gcc/clang)"
        )
    try:
        import cffi
    except ImportError as error:  # pragma: no cover - cffi ships with the env
        raise NativeToolchainError(f"cffi unavailable: {error}") from error

    directory = _build_dir()
    c_path = os.path.join(directory, f"kernel_{key}.c")
    so_path = os.path.join(directory, f"kernel_{key}.so")
    with open(c_path, "w") as handle:
        handle.write(source)
    # Vectorizing for the host ISA (-march=native -ftree-vectorize) buys
    # ~1.5-2x at runtime but compile time grows superlinearly with the number
    # of statement loops, so very large kernels settle for plain -O2 (still
    # several times faster than the per-op path).  -march=native is safe
    # here — this is JIT-style host compilation — and the flag-less retry
    # covers compilers that do not understand it.  The fixed runtime preamble
    # (thread pool scaffolding) does not count against the budget — only the
    # generated statement loops blow up compile time.
    n_kernel_lines = len(source.splitlines()) - len(_RUNTIME_PREAMBLE.splitlines())
    tune = (
        ["-march=native", "-ftree-vectorize"]
        if n_kernel_lines <= _VECTORIZE_MAX_LINES
        else []
    )
    threading_flags = _THREADING_FLAGS[mode]
    base = [compiler, "-O2", "-fwrapv", "-fPIC", "-shared",
            *threading_flags, c_path, "-o", so_path]
    result = subprocess.run(base[:1] + tune + base[1:], capture_output=True, text=True)
    if result.returncode != 0 and tune:
        result = subprocess.run(base, capture_output=True, text=True)
    if result.returncode != 0:
        raise NativeToolchainError(
            f"kernel compilation failed ({' '.join(base)}):\n{result.stderr}"
        )

    ffi = cffi.FFI()
    elem = _ELEM_TYPES[ir.dtype]
    signatures = [
        f"void {name}({elem} *, long long **, long long **, long long *, "
        f"long long, long long);"
        for name in (*ir.phases, *(
            ["cycle"] if set(ir.phases) >= {"settle", "clock_edge"} else []
        ))
    ]
    ffi.cdef("\n".join(signatures))
    lib = ffi.dlopen(so_path)
    _LIB_CACHE[key] = (ffi, lib)
    return ffi, lib


class NativeKernel:
    """A compiled C kernel bound to one program's live state arrays."""

    backend = "native"

    def __init__(self, ir: KernelIR, n_lanes: int) -> None:
        self.ir = ir
        self.n_lanes = n_lanes
        self.source = generate_c_source(ir)
        self._ffi, self._lib = _compile_library(self.source, ir)
        ffi = self._ffi

        def pointer(array: np.ndarray):
            if not array.flags["C_CONTIGUOUS"] or array.dtype != np.int64:
                raise NativeToolchainError(
                    "state arrays must be C-contiguous int64 lane arrays"
                )
            return ffi.cast("long long *", array.ctypes.data)

        self._pointer = pointer
        self._state_arrays: List[np.ndarray] = []
        self._mem_arrays: List[np.ndarray] = []
        self._S = ffi.NULL
        self._M = ffi.NULL
        self.rebind()
        #: block-sized scratch rows for the kernel's SSA temporaries
        self._scratch = np.zeros(scratch_rows(ir) * BLOCK_LANES, dtype=np.int64)
        self._W = (
            ffi.cast("long long *", self._scratch.ctypes.data)
            if self._scratch.size
            else ffi.NULL
        )
        self._elem_ptr_type = _ELEM_TYPES[ir.dtype] + " *"
        self._vid: Optional[int] = None
        self._vp = None
        #: worker count passed to the generated driver (1 = serial loop)
        self.n_threads = 1

    def set_threads(self, n_threads: int) -> None:
        """Set the worker count for subsequent kernel calls.

        Each worker gets its own scratch stripe, so the scratch buffer grows
        with the thread count; results stay bit-identical for any ``n`` since
        workers own disjoint lane blocks.
        """
        n_threads = max(1, int(n_threads))
        if n_threads == self.n_threads:
            return
        rows = scratch_rows(self.ir)
        if rows and n_threads > self._scratch.size // (rows * BLOCK_LANES):
            self._scratch = np.zeros(rows * BLOCK_LANES * n_threads, dtype=np.int64)
            self._W = self._ffi.cast("long long *", self._scratch.ctypes.data)
        self.n_threads = n_threads

    def rebind(self) -> None:
        """Re-capture pointers to the holders' *current* state arrays.

        The plain batch path (and sibling simulators sharing this program)
        commit by rebinding holder attributes, which detaches the arrays
        captured at construction.  :meth:`BatchSimulator.reset` calls this
        so a kernel always starts a run bound to the live state.
        """
        def changed(current, bound):
            return len(current) != len(bound) or any(
                a is not b for a, b in zip(current, bound)
            )

        state_arrays = self.ir.state_arrays()
        if changed(state_arrays, self._state_arrays):
            self._S = (
                self._ffi.new("long long *[]",
                              [self._pointer(a) for a in state_arrays])
                if state_arrays
                else self._ffi.NULL
            )
        mem_arrays = self.ir.mem_arrays()
        if changed(mem_arrays, self._mem_arrays):
            self._M = (
                self._ffi.new("long long *[]",
                              [self._pointer(a) for a in mem_arrays])
                if mem_arrays
                else self._ffi.NULL
            )
        # keep the bound arrays alive for as long as their pointers are
        self._state_arrays = state_arrays
        self._mem_arrays = mem_arrays

    def _v_pointer(self, v: np.ndarray):
        if id(v) != self._vid:
            if not v.flags["C_CONTIGUOUS"]:
                raise NativeToolchainError("value store must be C-contiguous")
            self._vp = self._ffi.cast(self._elem_ptr_type, v.ctypes.data)
            self._vid = id(v)
            self._vref = v  # keep the store alive while its pointer is cached
        return self._vp

    def settle(self, v: np.ndarray) -> None:
        self._lib.settle(self._v_pointer(v), self._S, self._M, self._W,
                         v.shape[1], self.n_threads)

    def clock_edge(self, v: np.ndarray) -> None:
        self._lib.clock_edge(self._v_pointer(v), self._S, self._M, self._W,
                             v.shape[1], self.n_threads)

    def cycle(self, v: np.ndarray) -> None:
        self._lib.cycle(self._v_pointer(v), self._S, self._M, self._W,
                        v.shape[1], self.n_threads)
