"""Shared pytest fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.netlist import NetlistBuilder, flatten
from repro.sim import Simulator


@pytest.fixture
def simple_pipeline_module():
    """A tiny 8-bit add-then-register pipeline used by many tests.

    Inputs ``a``/``b``, output ``total`` = registered ``a + b`` (one cycle of
    latency).
    """
    b = NetlistBuilder("simple_pipeline")
    a = b.input("a", 8)
    bb = b.input("b", 8)
    total = b.add(a, bb, name="adder")
    q = b.pipe(total, name="sum_reg")
    b.output("total", q)
    return b.build()


@pytest.fixture
def simple_pipeline_sim(simple_pipeline_module):
    return Simulator(flatten(simple_pipeline_module))
