"""Macromodel characterization against gate-level reference implementations.

For a given RTL component the engine:

1. technology-maps it to gates (:mod:`repro.gates.techmap`),
2. applies training vector *pairs* spanning a range of toggle densities,
3. measures the reference transition energy with the gate-level power
   calculator,
4. records the per-bit transition indicators ``T(x_i)`` of the component's
   monitored ports for each pair, and
5. solves the least-squares problem ``E ≈ base + sum_i coeff_i * T(x_i)``
   (numpy ``lstsq``) to obtain the linear-transition macromodel, together
   with goodness-of-fit metrics.

This mirrors the characterization flow the paper's power-macromodel library
is built with ([6], [8] in the paper).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.gates.gate_power import GatePowerCalculator
from repro.gates.gatesim import GateLevelSimulator
from repro.gates.techmap import TechnologyMapper
from repro.netlist.components import Component
from repro.power.macromodel import CharacterizationMetrics, LinearTransitionModel, LUTPowerModel
from repro.power.technology import CB130M_TECHNOLOGY, Technology


@dataclass
class CharacterizationResult:
    """A fitted model plus the data and metrics behind it."""

    component_type: str
    model: LinearTransitionModel
    metrics: CharacterizationMetrics
    #: reference energies (fJ) per training transition
    reference_energies: List[float]
    #: model-predicted energies per training transition
    predicted_energies: List[float]


class CharacterizationEngine:
    """Fits linear-transition macromodels from gate-level simulations."""

    def __init__(
        self,
        technology: Technology = CB130M_TECHNOLOGY,
        mapper: Optional[TechnologyMapper] = None,
        n_pairs: int = 120,
        seed: int = 2005,
        nonnegative: bool = True,
    ) -> None:
        self.technology = technology
        self.mapper = mapper if mapper is not None else TechnologyMapper(technology.cell_library)
        self.n_pairs = n_pairs
        self.seed = seed
        #: clamp negative fitted coefficients to zero (hardware-friendly)
        self.nonnegative = nonnegative

    # ------------------------------------------------------------------ API
    def characterize(self, component: Component) -> CharacterizationResult:
        """Fit a linear-transition model for one component."""
        inputs_bits, energies = self._collect_training_data(component)
        coefficients, base, predicted = self._fit(inputs_bits, energies)
        port_widths = {p.name: p.width for p in component.monitored_ports()}
        model = self._assemble_model(component, port_widths, coefficients, base)
        metrics = self._metrics(energies, predicted)
        model.metrics = metrics
        return CharacterizationResult(
            component_type=component.type_name,
            model=model,
            metrics=metrics,
            reference_energies=list(energies),
            predicted_energies=list(predicted),
        )

    def characterize_lut(self, component: Component, n_bins: int = 8) -> LUTPowerModel:
        """Fit a LUT macromodel (toggle-density binned) for the ablation study."""
        rng = random.Random(self.seed)
        gate_netlist = self.mapper.map_component(component)
        calculator = GatePowerCalculator(gate_netlist, self.technology.cell_library)
        simulator = GateLevelSimulator(gate_netlist)
        port_widths = {p.name: p.width for p in component.ports.values()}
        input_ports = [p.name for p in component.input_ports]
        output_ports = [p.name for p in component.output_ports]
        in_bits = sum(port_widths[p] for p in input_ports)
        out_bits = sum(port_widths[p] for p in output_ports) or 1

        sums = [[0.0] * n_bins for _ in range(n_bins)]
        counts = [[0] * n_bins for _ in range(n_bins)]
        for _ in range(self.n_pairs):
            first, second = self._vector_pair(component, rng)
            energy = calculator.vector_pair_energy(simulator, first, second, port_widths).total_fj
            prev_io = dict(first, **component.evaluate(first))
            curr_io = dict(second, **component.evaluate(second))
            in_density = self._density(input_ports, port_widths, prev_io, curr_io)
            out_density = self._density(output_ports, port_widths, prev_io, curr_io)
            row = min(n_bins - 1, int(in_density * n_bins))
            col = min(n_bins - 1, int(out_density * n_bins))
            sums[row][col] += energy
            counts[row][col] += 1
        table = [
            [sums[r][c] / counts[r][c] if counts[r][c] else 0.0 for c in range(n_bins)]
            for r in range(n_bins)
        ]
        self._fill_empty_bins(table, counts)
        return LUTPowerModel(
            component.type_name,
            {p.name: p.width for p in component.monitored_ports()},
            input_ports,
            output_ports,
            table,
        )

    # -------------------------------------------------------- training data
    def _collect_training_data(self, component: Component) -> Tuple[np.ndarray, np.ndarray]:
        rng = random.Random(self.seed)
        gate_netlist = self.mapper.map_component(component)
        calculator = GatePowerCalculator(gate_netlist, self.technology.cell_library)
        simulator = GateLevelSimulator(gate_netlist)
        port_widths = {p.name: p.width for p in component.ports.values()}
        monitored = sorted(p.name for p in component.monitored_ports())

        rows: List[List[int]] = []
        energies: List[float] = []
        for _ in range(self.n_pairs):
            first, second = self._vector_pair(component, rng)
            energy = calculator.vector_pair_energy(simulator, first, second, port_widths).total_fj
            prev_io = dict(first, **component.evaluate(first))
            curr_io = dict(second, **component.evaluate(second))
            row: List[int] = []
            for port in monitored:
                width = port_widths[port]
                toggles = prev_io.get(port, 0) ^ curr_io.get(port, 0)
                row.extend((toggles >> i) & 1 for i in range(width))
            rows.append(row)
            energies.append(energy)
        return np.array(rows, dtype=float), np.array(energies, dtype=float)

    def _vector_pair(self, component: Component, rng: random.Random) -> Tuple[Dict[str, int], Dict[str, int]]:
        """A training pair: a random vector and a perturbation of it.

        The flip probability is drawn per pair so the training set covers the
        whole toggle-density range (the regression otherwise extrapolates
        badly at low activities).
        """
        first: Dict[str, int] = {}
        second: Dict[str, int] = {}
        flip_probability = rng.choice([0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0])
        for port in component.input_ports:
            value = rng.getrandbits(port.width)
            flip_mask = 0
            for bit in range(port.width):
                if rng.random() < flip_probability:
                    flip_mask |= 1 << bit
            first[port.name] = value
            second[port.name] = value ^ flip_mask
        return first, second

    # ------------------------------------------------------------- fitting
    def _fit(self, features: np.ndarray, energies: np.ndarray):
        n_samples, n_bits = features.shape
        design = np.hstack([np.ones((n_samples, 1)), features])
        solution, *_ = np.linalg.lstsq(design, energies, rcond=None)
        base = float(solution[0])
        coefficients = solution[1:]
        if self.nonnegative:
            coefficients = np.clip(coefficients, 0.0, None)
            base = max(base, 0.0)
        predicted = design @ np.concatenate([[base], coefficients])
        return coefficients, base, predicted

    def _assemble_model(
        self,
        component: Component,
        port_widths: Mapping[str, int],
        flat_coefficients: Sequence[float],
        base: float,
    ) -> LinearTransitionModel:
        per_port: Dict[str, List[float]] = {}
        index = 0
        for port in sorted(port_widths):
            width = port_widths[port]
            per_port[port] = [float(c) for c in flat_coefficients[index:index + width]]
            index += width
        return LinearTransitionModel(component.type_name, port_widths, per_port, base)

    @staticmethod
    def _metrics(reference: np.ndarray, predicted: np.ndarray) -> CharacterizationMetrics:
        reference = np.asarray(reference, dtype=float)
        predicted = np.asarray(predicted, dtype=float)
        residual = reference - predicted
        ss_res = float(np.sum(residual**2))
        ss_tot = float(np.sum((reference - reference.mean()) ** 2))
        r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
        rmse = float(np.sqrt(np.mean(residual**2)))
        spread = float(reference.max() - reference.min()) or 1.0
        return CharacterizationMetrics(
            n_samples=int(reference.size),
            r_squared=r_squared,
            nrmse=rmse / spread,
            max_abs_error_fj=float(np.max(np.abs(residual))),
            mean_energy_fj=float(reference.mean()),
        )

    @staticmethod
    def _density(ports, widths, previous, current) -> float:
        bits = sum(widths[p] for p in ports) or 1
        toggles = 0
        for port in ports:
            toggles += bin(previous.get(port, 0) ^ current.get(port, 0)).count("1")
        return toggles / bits

    @staticmethod
    def _fill_empty_bins(table, counts) -> None:
        """Fill unobserved LUT bins with the nearest observed value."""
        n = len(table)
        observed = [(r, c) for r in range(n) for c in range(n) if counts[r][c]]
        if not observed:
            return
        for r in range(n):
            for c in range(n):
                if counts[r][c]:
                    continue
                nearest = min(observed, key=lambda rc: abs(rc[0] - r) + abs(rc[1] - c))
                table[r][c] = table[nearest[0]][nearest[1]]
