"""Wide_Checksum: a 168-bit rolling-checksum datapath.

A streaming mixer in the style of wide CRC/fingerprint pipelines: each cycle
a 48-bit word is spread across a 168-bit lane, XOR-folded into the running
state, rotated, and passed through an add/subtract/select network before
being folded back into the state register.  Every interesting net is 61-240
bits wide, so the whole datapath exercises the lane store's limb-array
representation (:mod:`repro.sim.batch`) — before the limb store this design
could only run on the object-dtype per-lane fallback.

Not a paper benchmark (``in_figure3=False``); it exists to keep a >60-bit
design on the fused batch + kernel paths in the registry, CLI and sweeps.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from repro.netlist.builder import NetlistBuilder
from repro.netlist.module import Module
from repro.sim.testbench import Testbench

#: state/datapath width: three 60-bit limbs in the lane store
WIDTH = 168
_MASK = (1 << WIDTH) - 1
#: rotate-left distance applied to the folded state each cycle
ROTATE = 107
WORD_WIDTH = 48

#: mixing constants (pi/golden-ratio digits, as in split-mix style mixers)
C_SUB = int("0x9e3779b97f4a7c15f39cc0605cedc8341082276bf3a27251", 16) & _MASK
C_CMP = int("0x243f6a8885a308d313198a2e037073440a4093822299f31d", 16) & _MASK


def reference_checksum(words: Sequence[int]) -> List[Dict[str, int]]:
    """Software reference: the per-cycle outputs for a fully-valid stream."""
    outputs: List[Dict[str, int]] = []
    state = 0
    for word in words:
        spread = word | (word << WORD_WIDTH) | (word << (2 * WORD_WIDTH))
        x = state ^ spread
        rot = ((x >> (WIDTH - ROTATE)) | (x << ROTATE)) & _MASK
        total = (x + rot) & _MASK
        diff = (total - C_SUB) & _MASK
        parity = bin(x).count("1") & 1
        mix = diff if parity else total
        inv = ~mix & _MASK
        outputs.append({
            "digest_lo": inv & ((1 << WORD_WIDTH) - 1),
            "parity": parity,
            "match": int(mix == C_CMP),
            "less": int(mix < C_CMP),
            "nonzero": int(mix != 0),
        })
        state = mix
    return outputs


def build() -> Module:
    """Build the 168-bit rolling-checksum datapath."""
    b = NetlistBuilder("Wide_Checksum")
    data = b.input("data", WORD_WIDTH)
    valid = b.input("valid", 1)

    state = b.register("state", WIDTH, has_enable=True)

    # spread the input word across the full width and fold it into the state
    spread = b.zext(b.concat(data, data, data, name="cat_spread"), WIDTH,
                    name="spread")
    x = b.xor_(state, spread, name="fold_xor")

    # rotate-left by ROTATE bits (pure wiring: two slices and a concat)
    rot = b.concat(b.slice(x, WIDTH - 1, WIDTH - ROTATE, name="rot_hi"),
                   b.slice(x, WIDTH - ROTATE - 1, 0, name="rot_lo"),
                   name="rot")

    # add/subtract/select mixing network
    total = b.add(x, rot, name="mix_add")
    diff = b.sub(total, b.const(C_SUB, WIDTH, name="const_sub"), name="mix_sub")
    parity = b.reduce("xor", x, name="fold_parity")
    mix = b.mux(parity, total, diff, name="mix_mux")

    # observation taps: wide compare, reduction and inverted digest
    lt, eq, _gt = b.compare(mix, b.const(C_CMP, WIDTH, name="const_cmp"),
                            name="match_cmp")
    nonzero = b.reduce("or", mix, name="mix_nonzero")
    inv = b.not_(mix, name="mix_not")
    digest = b.slice(inv, WORD_WIDTH - 1, 0, name="digest_slice")

    b.drive("state", d=mix, en=valid)

    b.output("digest_lo", digest)
    b.output("parity", parity)
    b.output("match", eq)
    b.output("less", lt)
    b.output("nonzero", nonzero)

    module = b.build()
    module.attributes["description"] = "168-bit rolling-checksum datapath"
    return module


class WideChecksumTestbench(Testbench):
    """Streams words and checks every output against the software reference."""

    def __init__(self, words: Sequence[int], name: str = "wide_checksum_tb") -> None:
        super().__init__(name)
        self.words = list(words)
        self.expected = reference_checksum(self.words)
        self.max_cycles = len(self.words) + 2
        self._checked = 0

    def drive(self, cycle: int, simulator):
        if cycle < len(self.words):
            return {"data": self.words[cycle], "valid": 1}
        return {"valid": 0}

    def check(self, cycle: int, simulator) -> None:
        # the datapath is combinational: word k's outputs settle in cycle k
        if cycle < len(self.words):
            expected = self.expected[cycle]
            for key, want in expected.items():
                got = simulator.get_output(key)
                assert got == want, (
                    f"word {cycle} output {key}: expected {want}, got {got}"
                )
            self._checked += 1

    def finished(self, cycle: int, simulator) -> bool:
        return cycle + 1 >= len(self.words)

    def captured(self):
        return {"words_checked": self._checked}


def random_words(n: int, seed: int = 0) -> List[int]:
    rng = random.Random(seed)
    return [rng.getrandbits(WORD_WIDTH) for _ in range(n)]


def testbench(n_words: int = 192, seed: int = 9) -> WideChecksumTestbench:
    """Standard stimulus: a pseudo-random word stream."""
    return WideChecksumTestbench(random_words(n_words, seed=seed))
