"""Slot-indexed code generation for the compiled simulation backend.

:func:`generate_source` lowers a levelized :class:`~repro.sim.scheduler.Schedule`
into the source of two plain Python functions over a flat list ``v`` of net
values ("slots"):

* ``_settle(v)`` — the entire combinational schedule as straight-line code,
  state-source outputs first, then every levelized component in topological
  order,
* ``_clock_edge(v)`` — sequential capture followed by commit, without any
  per-cycle dict construction for the common storage elements.

Simple components (adders, muxes, logic gates, comparators, shifters, slices,
ROMs, registers, counters, ...) are fused into masked integer expressions that
read and write slots directly.  Complex components (FSM controllers, hardware
power models, anything user-defined) fall back to a pre-bound
``evaluate``/``capture`` call fed by an inline dict literal over slot reads —
so any component that simulates on the interpreter also simulates compiled,
just with less of the speedup.

Fusion keys off the concrete component class (not ``type_name``), so a
subclass with an overridden ``evaluate`` is never fused incorrectly.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.netlist.nets import Net

# Dispatch tables are built lazily: the power-estimation component classes
# live in repro.core, which itself imports repro.sim, and resolving them at
# import time would create a cycle.  By the time a module is compiled (first
# Simulator construction) every involved module is importable.
_TABLES: Optional[tuple] = None


def _mask(width: int) -> int:
    return (1 << width) - 1


def _signed(expr: str, width: int) -> str:
    """Branchless two's-complement reinterpretation of a masked value."""
    sign = 1 << (width - 1)
    return f"(({expr} ^ {sign}) - {sign})"


class SourceEmitter:
    """Accumulates generated lines plus the exec environment they reference."""

    def __init__(self, slot_of: Dict[Net, int]) -> None:
        self.slot_of = slot_of
        #: wide net -> limb count; populated by the batch compiler when the
        #: module uses the limb-array store (scalar codegen leaves it empty)
        self.limbs_of: Dict[Net, int] = {}
        self.env: Dict[str, object] = {}
        self.lines: List[str] = []
        self.n_fused = 0
        self.n_fallback = 0
        self._uid = 0

    # ------------------------------------------------------------- plumbing
    def uid(self) -> int:
        self._uid += 1
        return self._uid

    def emit(self, line: str, indent: int = 0) -> None:
        self.lines.append("    " * indent + line)

    def bind(self, name: str, obj: object) -> str:
        self.env[name] = obj
        return name

    # ------------------------------------------------------- port accessors
    def req(self, component, port_name: str) -> Optional[str]:
        """Slot expression for a *required* input; None when unconnected.

        A ``None`` makes the caller fall back to the generic ``evaluate``
        path, which reproduces the interpreter's ``KeyError`` semantics for
        unconnected required inputs.
        """
        port = component.ports.get(port_name)
        if port is None or port.net is None:
            return None
        return f"v[{self.slot_of[port.net]}]"

    def opt(self, component, port_name: str, default: int = 0) -> str:
        """Slot expression for an ``inputs.get(name, default)`` input."""
        expr = self.req(component, port_name)
        return str(default) if expr is None else expr

    def out(self, component, port_name: str) -> Optional[int]:
        """Slot of a component output, or None when unconnected."""
        port = component.ports.get(port_name)
        if port is None or port.net is None:
            return None
        return self.slot_of[port.net]

    def connected_outputs(self, component) -> List[Tuple[str, int]]:
        return [
            (p.name, self.slot_of[p.net])
            for p in component.output_ports
            if p.net is not None
        ]

    def connected_inputs(self, component) -> List[Tuple[str, int]]:
        return [
            (p.name, self.slot_of[p.net])
            for p in component.input_ports
            if p.net is not None
        ]

    # ------------------------------------------------------------ fallbacks
    def fallback_evaluate(self, component, empty_inputs: bool = False) -> None:
        """Generic path: bound ``evaluate`` call fed by an inline dict literal."""
        outs = self.connected_outputs(component)
        if not outs:
            return
        uid = self.uid()
        name = self.bind(f"_ev{uid}", component.evaluate)
        if empty_inputs:
            args = "{}"
        else:
            items = ", ".join(
                f"{port!r}: v[{slot}]" for port, slot in self.connected_inputs(component)
            )
            args = "{" + items + "}"
        self.emit(f"_o = {name}({args})")
        for port, slot in outs:
            self.emit(f"v[{slot}] = _o[{port!r}]")
        self.n_fallback += 1

    def fallback_capture(self, component) -> None:
        uid = self.uid()
        name = self.bind(f"_cap{uid}", component.capture)
        items = ", ".join(
            f"{port!r}: v[{slot}]" for port, slot in self.connected_inputs(component)
        )
        self.emit(f"{name}({{{items}}})")
        self.n_fallback += 1


# ---------------------------------------------------------------------------
# Combinational (levelized) component emitters.  Each returns True when it
# fused the component; False defers to the generic fallback.
# ---------------------------------------------------------------------------


def _emit_adder(em: SourceEmitter, c) -> bool:
    a, b = em.req(c, "a"), em.req(c, "b")
    if a is None or b is None:
        return False
    terms = f"{a} + {b}"
    if c.with_carry_in:
        cin = em.opt(c, "cin", 0)
        if cin != "0":
            terms += f" + {cin}"
    y, cout = em.out(c, "y"), em.out(c, "cout") if c.with_carry_out else None
    mask = _mask(c.width)
    if cout is not None:
        em.emit(f"_t = {terms}")
        if y is not None:
            em.emit(f"v[{y}] = _t & {mask}")
        em.emit(f"v[{cout}] = (_t >> {c.width}) & 1")
    elif y is not None:
        em.emit(f"v[{y}] = ({terms}) & {mask}")
    return True


def _emit_subtractor(em: SourceEmitter, c) -> bool:
    a, b = em.req(c, "a"), em.req(c, "b")
    if a is None or b is None:
        return False
    y = em.out(c, "y")
    borrow = em.out(c, "borrow") if c.with_borrow_out else None
    mask = _mask(c.width)
    if borrow is not None:
        em.emit(f"_t = {a} - {b}")
        if y is not None:
            em.emit(f"v[{y}] = _t & {mask}")
        em.emit(f"v[{borrow}] = 1 if _t < 0 else 0")
    elif y is not None:
        em.emit(f"v[{y}] = ({a} - {b}) & {mask}")
    return True


def _emit_addsub(em: SourceEmitter, c) -> bool:
    a, b, sub = em.req(c, "a"), em.req(c, "b"), em.req(c, "sub")
    if a is None or b is None or sub is None:
        return False
    y = em.out(c, "y")
    if y is not None:
        mask = _mask(c.width)
        em.emit(f"v[{y}] = (({a} - {b}) if {sub} & 1 else ({a} + {b})) & {mask}")
    return True


def _emit_multiplier(em: SourceEmitter, c) -> bool:
    a, b = em.req(c, "a"), em.req(c, "b")
    if a is None or b is None:
        return False
    y = em.out(c, "y")
    if y is None:
        return True
    mask = _mask(c.width_y)
    if c.signed:
        a = _signed(a, c.width_a)
        b = _signed(b, c.width_b)
    em.emit(f"v[{y}] = ({a} * {b}) & {mask}")
    return True


def _emit_comparator(em: SourceEmitter, c) -> bool:
    a, b = em.req(c, "a"), em.req(c, "b")
    if a is None or b is None:
        return False
    if c.signed:
        a = _signed(a, c.width)
        b = _signed(b, c.width)
    em.emit(f"_a = {a}")
    em.emit(f"_b = {b}")
    for port, op in (("lt", "<"), ("eq", "=="), ("gt", ">")):
        slot = em.out(c, port)
        if slot is not None:
            em.emit(f"v[{slot}] = 1 if _a {op} _b else 0")
    return True


def _emit_absval(em: SourceEmitter, c) -> bool:
    a = em.req(c, "a")
    if a is None:
        return False
    y = em.out(c, "y")
    if y is not None:
        # |to_signed(a)| <= 2^(width-1) always fits the unsigned output range.
        em.emit(f"_t = {_signed(a, c.width)}")
        em.emit(f"v[{y}] = -_t if _t < 0 else _t")
    return True


def _emit_saturator(em: SourceEmitter, c) -> bool:
    a = em.req(c, "a")
    if a is None:
        return False
    y = em.out(c, "y")
    if y is None:
        return True
    if c.signed:
        lo = -(1 << (c.width_out - 1))
        hi = (1 << (c.width_out - 1)) - 1
        mask = _mask(c.width_out)
        lo_enc = lo & mask
        em.emit(f"_t = {_signed(a, c.width_in)}")
        em.emit(f"v[{y}] = {lo_enc} if _t < {lo} else ({hi} if _t > {hi} else _t & {mask})")
    else:
        hi = _mask(c.width_out)
        em.emit(f"v[{y}] = {a} if {a} <= {hi} else {hi}")
    return True


def _emit_shifter_const(em: SourceEmitter, c) -> bool:
    a = em.req(c, "a")
    if a is None:
        return False
    y = em.out(c, "y")
    if y is None:
        return True
    mask = _mask(c.width)
    if c.direction == "left":
        em.emit(f"v[{y}] = ({a} << {c.amount}) & {mask}")
    elif c.arithmetic:
        em.emit(f"v[{y}] = ({_signed(a, c.width)} >> {c.amount}) & {mask}")
    else:
        em.emit(f"v[{y}] = {a} >> {c.amount}")
    return True


def _emit_shifter_var(em: SourceEmitter, c) -> bool:
    a, amount = em.req(c, "a"), em.req(c, "amount")
    if a is None or amount is None:
        return False
    y = em.out(c, "y")
    if y is None:
        return True
    mask = _mask(c.width)
    if c.direction == "left":
        em.emit(f"v[{y}] = ({a} << {amount}) & {mask}")
    elif c.arithmetic:
        em.emit(f"v[{y}] = ({_signed(a, c.width)} >> {amount}) & {mask}")
    else:
        em.emit(f"v[{y}] = {a} >> {amount}")
    return True


def _emit_mux(em: SourceEmitter, c) -> bool:
    sel = em.req(c, "sel")
    if sel is None:
        return False
    data_slots = []
    for i in range(c.n_inputs):
        expr = em.req(c, f"d{i}")
        if expr is None:
            return False
        data_slots.append(em.slot_of[c.ports[f"d{i}"].net])
    y = em.out(c, "y")
    if y is None:
        return True
    uid = em.uid()
    table = em.bind(f"_mx{uid}", tuple(data_slots))
    last = c.n_inputs - 1
    em.emit(f"_s = {sel}")
    em.emit(f"if _s > {last}: _s = {last}")
    em.emit(f"v[{y}] = v[{table}[_s]]")
    return True


_LOGIC_EXPRS = {
    "and": "{a} & {b}",
    "or": "{a} | {b}",
    "xor": "{a} ^ {b}",
    "nand": "({a} & {b}) ^ {m}",
    "nor": "({a} | {b}) ^ {m}",
    "xnor": "({a} ^ {b}) ^ {m}",
}


def _emit_logic(em: SourceEmitter, c) -> bool:
    a, b = em.req(c, "a"), em.req(c, "b")
    if a is None or b is None:
        return False
    y = em.out(c, "y")
    if y is not None:
        expr = _LOGIC_EXPRS[c.op].format(a=a, b=b, m=_mask(c.width))
        em.emit(f"v[{y}] = {expr}")
    return True


def _emit_not(em: SourceEmitter, c) -> bool:
    a = em.req(c, "a")
    if a is None:
        return False
    y = em.out(c, "y")
    if y is not None:
        em.emit(f"v[{y}] = {a} ^ {_mask(c.width)}")
    return True


def _emit_reduce(em: SourceEmitter, c) -> bool:
    a = em.req(c, "a")
    if a is None:
        return False
    y = em.out(c, "y")
    if y is None:
        return True
    if c.op == "and":
        em.emit(f"v[{y}] = 1 if {a} == {_mask(c.width)} else 0")
    elif c.op == "or":
        em.emit(f"v[{y}] = 1 if {a} else 0")
    else:
        em.emit(f"v[{y}] = ({a}).bit_count() & 1")
    return True


def _emit_concat(em: SourceEmitter, c) -> bool:
    parts = []
    shift = 0
    for i, width in enumerate(c.widths):
        expr = em.req(c, f"i{i}")
        if expr is None:
            return False
        parts.append(expr if shift == 0 else f"({expr} << {shift})")
        shift += width
    y = em.out(c, "y")
    if y is not None:
        em.emit(f"v[{y}] = " + " | ".join(parts))
    return True


def _emit_slice(em: SourceEmitter, c) -> bool:
    a = em.req(c, "a")
    if a is None:
        return False
    y = em.out(c, "y")
    if y is not None:
        shifted = a if c.low == 0 else f"({a} >> {c.low})"
        em.emit(f"v[{y}] = {shifted} & {_mask(c.width_out)}")
    return True


def _emit_extend(em: SourceEmitter, c) -> bool:
    a = em.req(c, "a")
    if a is None:
        return False
    y = em.out(c, "y")
    if y is not None:
        if c.signed:
            em.emit(f"v[{y}] = {_signed(a, c.width_in)} & {_mask(c.width_out)}")
        else:
            em.emit(f"v[{y}] = {a}")
    return True


def _emit_decoder(em: SourceEmitter, c) -> bool:
    a = em.req(c, "a")
    if a is None:
        return False
    y = em.out(c, "y")
    if y is not None:
        em.emit(f"v[{y}] = 1 << {a}")
    return True


def _emit_rom(em: SourceEmitter, c) -> bool:
    y = em.out(c, "rdata")
    if y is not None:
        uid = em.uid()
        contents = em.bind(f"_rom{uid}", c.contents)
        addr = em.opt(c, "addr", 0)
        em.emit(f"v[{y}] = {contents}[{addr} % {c.depth}]")
    return True


def _emit_regfile_read(em: SourceEmitter, c) -> bool:
    uid = em.uid()
    state = em.bind(f"_c{uid}", c)
    for i in range(c.n_read_ports):
        slot = em.out(c, f"rdata{i}")
        if slot is not None:
            addr = em.opt(c, f"raddr{i}", 0)
            em.emit(f"v[{slot}] = {state}._state[{addr} % {c.depth}]")
    return True


def _emit_memory_async_read(em: SourceEmitter, c) -> bool:
    if c.sync_read:
        return False
    slot = em.out(c, "rdata")
    if slot is not None:
        uid = em.uid()
        state = em.bind(f"_c{uid}", c)
        addr = em.opt(c, "addr", 0)
        em.emit(f"v[{slot}] = {state}._state[{addr} % {c.depth}]")
    return True


# ---------------------------------------------------------------------------
# State-source emitters (outputs produced before combinational evaluation).
# ---------------------------------------------------------------------------


def _emit_state_register_like(em: SourceEmitter, c) -> bool:
    slot = em.out(c, "q")
    if slot is not None:
        uid = em.uid()
        obj = em.bind(f"_c{uid}", c)
        em.emit(f"v[{slot}] = {obj}._state")
    return True


def _emit_state_constant(em: SourceEmitter, c) -> bool:
    slot = em.out(c, "y")
    if slot is not None:
        em.emit(f"v[{slot}] = {c.value}")
    return True


def _emit_state_memory(em: SourceEmitter, c) -> bool:
    if not c.sync_read:
        return False
    slot = em.out(c, "rdata")
    if slot is not None:
        uid = em.uid()
        obj = em.bind(f"_c{uid}", c)
        em.emit(f"v[{slot}] = {obj}._read_reg")
    return True


def _emit_state_fsm(em: SourceEmitter, c) -> bool:
    from repro.netlist.signals import mask_value

    outs = em.connected_outputs(c)
    if not outs:
        return True
    table = {
        state: tuple(
            mask_value(assigns.get(port, 0), c.output_widths[port]) for port, _ in outs
        )
        for state, assigns in c.moore_outputs.items()
    }
    uid = em.uid()
    obj = em.bind(f"_c{uid}", c)
    tbl = em.bind(f"_ft{uid}", table)
    em.emit(f"_o = {tbl}[{obj}._state]")
    for index, (_, slot) in enumerate(outs):
        em.emit(f"v[{slot}] = _o[{index}]")
    return True


def _emit_state_power_model(em: SourceEmitter, c) -> bool:
    slot = em.out(c, "energy")
    if slot is not None:
        uid = em.uid()
        obj = em.bind(f"_c{uid}", c)
        em.emit(f"v[{slot}] = {obj}._output")
    return True


def _emit_state_aggregator(em: SourceEmitter, c) -> bool:
    slot = em.out(c, "total")
    if slot is not None:
        uid = em.uid()
        obj = em.bind(f"_c{uid}", c)
        em.emit(f"v[{slot}] = {obj}._total")
    return True


def _emit_state_strobe(em: SourceEmitter, c) -> bool:
    slot = em.out(c, "strobe")
    if slot is not None:
        uid = em.uid()
        obj = em.bind(f"_c{uid}", c)
        em.emit(f"v[{slot}] = {obj}._strobe")
    return True


# ---------------------------------------------------------------------------
# Sequential capture emitters (clock edge, before commit).
# ---------------------------------------------------------------------------


def _emit_capture_register(em: SourceEmitter, c) -> bool:
    d = em.req(c, "d")
    if d is None:
        return False
    uid = em.uid()
    obj = em.bind(f"_c{uid}", c)
    clr = em.req(c, "clear") if c.has_clear else None
    # an unconnected enable defaults to 1 in Register.capture
    en = em.req(c, "en") if c.has_enable else None
    if clr is not None and en is not None:
        em.emit(f"if {clr} & 1:")
        em.emit(f"{obj}._pending = {c.reset_value}", indent=1)
        em.emit(f"elif {en} & 1:")
        em.emit(f"{obj}._pending = {d}", indent=1)
        em.emit("else:")
        em.emit(f"{obj}._pending = {obj}._state", indent=1)
    elif clr is not None:
        em.emit(f"{obj}._pending = {c.reset_value} if {clr} & 1 else {d}")
    elif en is not None:
        em.emit(f"{obj}._pending = {d} if {en} & 1 else {obj}._state")
    else:
        em.emit(f"{obj}._pending = {d}")
    return True


def _emit_capture_counter(em: SourceEmitter, c) -> bool:
    load = em.req(c, "load") if c.has_load else None
    if load is not None and em.req(c, "d") is None:
        return False
    en = em.req(c, "en")
    uid = em.uid()
    obj = em.bind(f"_c{uid}", c)
    indent = 0
    if load is not None:
        em.emit(f"if {load} & 1:")
        em.emit(f"{obj}._pending = {em.req(c, 'd')}", indent=1)
        em.emit(f"elif ({en} & 1):" if en is not None else "elif 0:")
        indent = 1
    elif en is not None:
        em.emit(f"if {en} & 1:")
        indent = 1
    if en is not None or load is not None:
        em.emit(f"_t = {obj}._state + 1", indent=indent)
        if c.wrap_at is not None:
            em.emit(f"if _t >= {c.wrap_at}: _t = 0", indent=indent)
        em.emit(f"{obj}._pending = _t & {_mask(c.width)}", indent=indent)
        em.emit("else:", indent=indent - 1)
        em.emit(f"{obj}._pending = {obj}._state", indent=indent)
    else:
        # en unconnected (reads as 0) and no load: the counter never moves
        em.emit(f"{obj}._pending = {obj}._state")
    return True


def _emit_capture_accumulator(em: SourceEmitter, c) -> bool:
    d = em.req(c, "d")
    en = em.req(c, "en")
    if en is not None and d is None:
        return False
    uid = em.uid()
    obj = em.bind(f"_c{uid}", c)
    clr = em.req(c, "clear")
    add = f"({obj}._state + {d}) & {_mask(c.width)}"
    if clr is not None and en is not None:
        em.emit(f"if {clr} & 1:")
        em.emit(f"{obj}._pending = 0", indent=1)
        em.emit(f"elif {en} & 1:")
        em.emit(f"{obj}._pending = {add}", indent=1)
        em.emit("else:")
        em.emit(f"{obj}._pending = {obj}._state", indent=1)
    elif clr is not None:
        em.emit(f"{obj}._pending = 0 if {clr} & 1 else {obj}._state")
    elif en is not None:
        em.emit(f"{obj}._pending = {add} if {en} & 1 else {obj}._state")
    else:
        em.emit(f"{obj}._pending = {obj}._state")
    return True


def _emit_capture_memory(em: SourceEmitter, c) -> bool:
    uid = em.uid()
    obj = em.bind(f"_c{uid}", c)
    addr = em.opt(c, "addr", 0)
    we = em.req(c, "we")
    wdata = em.opt(c, "wdata", 0)
    em.emit(f"_t = {addr} % {c.depth}")
    if we is not None:
        em.emit(f"{obj}._pending_write = (_t, {wdata}) if {we} & 1 else None")
    else:
        em.emit(f"{obj}._pending_write = None")
    em.emit(f"{obj}._pending_read = {obj}._state[_t]")
    return True


def _emit_capture_regfile(em: SourceEmitter, c) -> bool:
    uid = em.uid()
    obj = em.bind(f"_c{uid}", c)
    we = em.req(c, "we")
    if we is None:
        em.emit(f"{obj}._pending_write = None")
    else:
        waddr = em.opt(c, "waddr", 0)
        wdata = em.opt(c, "wdata", 0)
        em.emit(
            f"{obj}._pending_write = ({waddr} % {c.depth}, {wdata}) if {we} & 1 else None"
        )
    return True


def _emit_capture_aggregator(em: SourceEmitter, c) -> bool:
    uid = em.uid()
    obj = em.bind(f"_c{uid}", c)
    terms = [em.req(c, f"e{i}") for i in range(c.n_inputs)]
    total = " + ".join(t for t in terms if t is not None) or "0"
    clr = em.req(c, "clear")
    add = f"({obj}._total + {total}) & {_mask(c.total_width)}"
    if clr is not None:
        em.emit(f"if {clr} & 1:")
        em.emit(f"{obj}._pending = 0", indent=1)
        em.emit("else:")
        em.emit(f"{obj}._pending = {add}", indent=1)
    else:
        em.emit(f"{obj}._pending = {add}")
    return True


def _emit_capture_power_model(em: SourceEmitter, c) -> bool:
    """Fully inline the hardware power model's toggle-counting capture.

    Reads monitored slots directly (they carry already-masked values) and
    charges energy via the model's per-byte coefficient tables, with a fixed
    number of table reads per port unrolled at compile time.
    """
    if c.sample_on_strobe_only:
        return False  # paper-literal sampling stays on the reference capture
    uid = em.uid()
    obj = em.bind(f"_c{uid}", c)
    strobe = em.opt(c, "strobe", 0)
    em.emit(f"_e = {c.base_code}")
    em.emit(f"_p = {obj}._previous")
    em.emit("_np = {}")
    for port_name, in_name, _, tables in c._chunked:
        cur = em.opt(c, in_name, 0)
        em.emit(f"_t = _p[{port_name!r}] ^ {cur}")
        em.emit(f"_np[{port_name!r}] = {cur}")
        reads = []
        for chunk, table in enumerate(tables):
            tname = em.bind(f"_tb{uid}_{em.uid()}", table)
            if chunk == 0:
                index = "_t" if len(tables) == 1 else "_t & 255"
            else:
                index = f"(_t >> {8 * chunk}) & 255"
            reads.append(f"{tname}[{index}]")
        em.emit("if _t:")
        em.emit("_e += " + " + ".join(reads), indent=1)
    em.emit(f"_a = {obj}._accumulated + _e")
    em.emit(f"if {strobe} & 1:")
    em.emit(f"{obj}._pending_output = _a & {_mask(c.energy_width)}", indent=1)
    em.emit(f"{obj}._pending_accumulated = 0", indent=1)
    em.emit("else:")
    em.emit(f"{obj}._pending_output = 0", indent=1)
    em.emit(f"{obj}._pending_accumulated = _a", indent=1)
    em.emit(f"{obj}._pending_previous = _np")
    return True


def _emit_capture_strobe(em: SourceEmitter, c) -> bool:
    uid = em.uid()
    obj = em.bind(f"_c{uid}", c)
    # an unconnected enable defaults to 1 in PowerStrobeGenerator.capture
    en = em.req(c, "enable")
    indent = 0
    if en is not None:
        em.emit(f"if {en} & 1:")
        indent = 1
    if c.period == 1:
        em.emit(f"{obj}._pending_count = 0", indent=indent)
        em.emit(f"{obj}._pending_strobe = 1", indent=indent)
    else:
        em.emit(f"_t = {obj}._count + 1", indent=indent)
        em.emit(f"if _t >= {c.period}: _t = 0", indent=indent)
        em.emit(f"{obj}._pending_count = _t", indent=indent)
        em.emit(
            f"{obj}._pending_strobe = 1 if _t == {c.period - 1} else 0", indent=indent
        )
    if en is not None:
        em.emit("else:")
        em.emit(f"{obj}._pending_count = {obj}._count", indent=1)
        em.emit(f"{obj}._pending_strobe = 0", indent=1)
    return True


# ---------------------------------------------------------------------------
# Commit emitters: inline the trivial commits, bound-method call otherwise.
# ---------------------------------------------------------------------------


def _commit_state(em: SourceEmitter, c) -> None:
    uid = em.uid()
    obj = em.bind(f"_c{uid}", c)
    em.emit(f"{obj}._state = {obj}._pending")


def _commit_aggregator(em: SourceEmitter, c) -> None:
    uid = em.uid()
    obj = em.bind(f"_c{uid}", c)
    em.emit(f"{obj}._total = {obj}._pending")


def _commit_power_model(em: SourceEmitter, c) -> None:
    uid = em.uid()
    obj = em.bind(f"_c{uid}", c)
    em.emit(f"{obj}._previous = {obj}._pending_previous")
    em.emit(f"{obj}._accumulated = {obj}._pending_accumulated")
    em.emit(f"{obj}._output = {obj}._pending_output")


def _commit_strobe(em: SourceEmitter, c) -> None:
    uid = em.uid()
    obj = em.bind(f"_c{uid}", c)
    em.emit(f"{obj}._count = {obj}._pending_count")
    em.emit(f"{obj}._strobe = {obj}._pending_strobe")


def _commit_generic(em: SourceEmitter, c) -> None:
    uid = em.uid()
    name = em.bind(f"_cm{uid}", c.commit)
    em.emit(f"{name}()")


def _tables() -> tuple:
    """Lazily resolved class-keyed dispatch tables (avoids import cycles)."""
    global _TABLES
    if _TABLES is not None:
        return _TABLES

    from repro.core.aggregator import PowerAggregator
    from repro.core.power_model_hw import HardwarePowerModel
    from repro.core.strobe import PowerStrobeGenerator
    from repro.netlist import components as comps
    from repro.netlist import sequential as seq
    from repro.netlist.fsm import FSMController

    comb = {
        comps.Adder: _emit_adder,
        comps.Subtractor: _emit_subtractor,
        comps.AddSub: _emit_addsub,
        comps.Multiplier: _emit_multiplier,
        comps.Comparator: _emit_comparator,
        comps.AbsoluteValue: _emit_absval,
        comps.Saturator: _emit_saturator,
        comps.ShifterConst: _emit_shifter_const,
        comps.ShifterVar: _emit_shifter_var,
        comps.Mux: _emit_mux,
        comps.LogicOp: _emit_logic,
        comps.NotOp: _emit_not,
        comps.ReduceOp: _emit_reduce,
        comps.Concat: _emit_concat,
        comps.Slice: _emit_slice,
        comps.Extend: _emit_extend,
        comps.Decoder: _emit_decoder,
        seq.ROM: _emit_rom,
        seq.RegisterFile: _emit_regfile_read,
        seq.Memory: _emit_memory_async_read,
    }
    state = {
        seq.Register: _emit_state_register_like,
        seq.Counter: _emit_state_register_like,
        seq.Accumulator: _emit_state_register_like,
        seq.Memory: _emit_state_memory,
        comps.Constant: _emit_state_constant,
        FSMController: _emit_state_fsm,
        HardwarePowerModel: _emit_state_power_model,
        PowerAggregator: _emit_state_aggregator,
        PowerStrobeGenerator: _emit_state_strobe,
    }
    capture = {
        seq.Register: _emit_capture_register,
        seq.Counter: _emit_capture_counter,
        seq.Accumulator: _emit_capture_accumulator,
        seq.Memory: _emit_capture_memory,
        seq.RegisterFile: _emit_capture_regfile,
        HardwarePowerModel: _emit_capture_power_model,
        PowerAggregator: _emit_capture_aggregator,
        PowerStrobeGenerator: _emit_capture_strobe,
    }
    commit = {
        seq.Register: _commit_state,
        seq.Counter: _commit_state,
        seq.Accumulator: _commit_state,
        PowerAggregator: _commit_aggregator,
        FSMController: _commit_state,
        HardwarePowerModel: _commit_power_model,
        PowerStrobeGenerator: _commit_strobe,
    }
    _TABLES = (comb, state, capture, commit)
    return _TABLES


def generate_source(
    module, schedule, slot_of: Dict[Net, int]
) -> Tuple[str, Dict[str, object], int, int]:
    """Generate ``_settle``/``_clock_edge`` source for a levelized module.

    Returns ``(source, env, n_fused, n_fallback)`` where ``env`` holds the
    objects (components, bound methods, lookup tables) the source refers to.
    """
    comb_table, state_table, capture_table, commit_table = _tables()
    em = SourceEmitter(slot_of)

    lines: List[str] = ["def _settle(v):"]
    em.lines = body = []
    for component in schedule.state_sources:
        emitter = state_table.get(type(component))
        if emitter is None or not emitter(em, component):
            em.fallback_evaluate(component, empty_inputs=True)
        else:
            em.n_fused += 1
    for component in schedule.ordered:
        emitter = comb_table.get(type(component))
        if emitter is None or not emitter(em, component):
            em.fallback_evaluate(component)
        else:
            em.n_fused += 1
    if not body:
        body.append("pass")
    lines.extend("    " + line for line in body)

    lines.append("")
    lines.append("def _clock_edge(v):")
    em.lines = body = []
    for component in schedule.sequential:
        emitter = capture_table.get(type(component))
        if emitter is None or not emitter(em, component):
            em.fallback_capture(component)
        else:
            em.n_fused += 1
    for component in schedule.sequential:
        committer = commit_table.get(type(component), _commit_generic)
        committer(em, component)
    if not body:
        body.append("pass")
    lines.extend("    " + line for line in body)

    return "\n".join(lines) + "\n", em.env, em.n_fused, em.n_fallback
