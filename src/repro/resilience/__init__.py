"""Fault-tolerant execution layer: retries, timeouts, crash isolation.

One bad task must not kill a sweep.  This package is the robustness
substrate under :mod:`repro.bench.shard` and :mod:`repro.api.sweep` (and any
future serving layer):

* :mod:`repro.resilience.failures` — structured :class:`TaskFailure` /
  :class:`TaskOutcome` / :class:`RunOutcome` records instead of raised
  exceptions,
* :mod:`repro.resilience.policy` — :class:`RetryPolicy`: per-task timeouts,
  retry budgets and exponential backoff with deterministic seeded jitter
  (env defaults ``REPRO_TASK_TIMEOUT_S`` / ``REPRO_TASK_RETRIES``),
* :mod:`repro.resilience.runner` — :func:`run_resilient_tasks`, the
  process-pool scheduler that retries failed attempts, kills and respawns
  the pool around hung or crashed workers, isolates crash suspects for exact
  blame, and turns Ctrl-C into a partial result,
* :mod:`repro.resilience.faults` — deterministic fault injection behind
  ``REPRO_FAULT_PLAN`` (named sites: ``worker``, ``kernel``, ``cache``), so
  every recovery path above is tested end-to-end instead of hoped-for.
"""

from repro.resilience.failures import (
    FAILURE_KINDS,
    RunOutcome,
    TaskError,
    TaskFailure,
    TaskOutcome,
)
from repro.resilience.faults import (
    FAULT_PLAN_ENV,
    FaultRule,
    InjectedFault,
    install_plan,
    maybe_inject,
    parse_plan,
)
from repro.resilience.policy import (
    TASK_RETRIES_ENV,
    TASK_TIMEOUT_ENV,
    RetryPolicy,
)
from repro.resilience.runner import run_resilient_tasks

__all__ = [
    "FAILURE_KINDS",
    "FAULT_PLAN_ENV",
    "FaultRule",
    "InjectedFault",
    "RetryPolicy",
    "RunOutcome",
    "TASK_RETRIES_ENV",
    "TASK_TIMEOUT_ENV",
    "TaskError",
    "TaskFailure",
    "TaskOutcome",
    "install_plan",
    "maybe_inject",
    "parse_plan",
    "run_resilient_tasks",
]
