"""Tests for the instrumentation pass and the emulated-vs-software agreement.

The key invariant of power emulation is checked here: the total power computed
*inside the enhanced circuit* (by the inserted power models and aggregator)
must match the software RTL power estimator evaluating the same macromodels,
up to fixed-point quantization.
"""

from __future__ import annotations

import pytest

from repro.core import (
    InstrumentationConfig,
    compare_reports,
    instrument,
)
from repro.core.emulator import EmulationPlatform
from repro.core.instrument import InstrumentationError
from repro.netlist import NetlistBuilder, flatten, validate_module
from repro.power import RTLPowerEstimator, build_seed_library
from repro.sim import RandomTestbench, Simulator


def build_datapath():
    """Small mixed datapath: multiplier, adder, register, comparator."""
    b = NetlistBuilder("dut")
    a = b.input("a", 8)
    x = b.input("x", 8)
    product = b.mul(a, x, width_y=16, name="mult")
    total = b.add(product, b.zext(a, 16), name="adder")
    reg = b.pipe(total, name="out_reg")
    lt, eq, gt = b.compare(reg, b.const(100, 16), name="cmp")
    b.output("result", reg)
    b.output("over", gt)
    return b.build()


@pytest.fixture(scope="module")
def library():
    return build_seed_library()


@pytest.fixture(scope="module")
def instrumented(library):
    return instrument(build_datapath(), library)


def test_instrumented_module_is_valid_rtl(instrumented):
    report = validate_module(instrumented.module, raise_on_error=False)
    assert report.ok, report.errors


def test_instrumentation_inserts_expected_hardware(instrumented):
    module = instrumented.module
    hw_models = [c for c in module.components.values() if c.type_name == "power_model_hw"]
    strobes = [c for c in module.components.values() if c.type_name == "power_strobe"]
    aggregators = [c for c in module.components.values() if c.type_name == "power_aggregator"]
    assert len(hw_models) == instrumented.n_power_models > 0
    assert len(strobes) == 1
    assert len(aggregators) == 1
    assert "power_total" in module.ports
    assert "power_strobe" in module.ports
    # every monitored component got exactly one model
    assert set(instrumented.model_map) == {
        c.name
        for c in flatten(build_datapath()).components.values()
        if c.monitored_ports()
    }
    assert instrumented.monitored_bits > 0


def test_original_module_untouched(library):
    module = build_datapath()
    n_before = len(flatten(module).components)
    instrument(module, library)
    assert len(flatten(module).components) == n_before


def test_double_instrumentation_rejected(library, instrumented):
    with pytest.raises(InstrumentationError, match="already contains"):
        instrument(instrumented.module, library)


def test_monitor_filter_limits_models(library):
    config = InstrumentationConfig(
        monitor_filter=lambda c: c.type_name == "multiplier"
    )
    design = instrument(build_datapath(), library, config)
    assert design.n_power_models == 1
    assert list(design.model_map) == ["mult"]


def test_empty_monitor_set_rejected(library):
    config = InstrumentationConfig(monitor_filter=lambda c: False)
    with pytest.raises(InstrumentationError, match="no components eligible"):
        instrument(build_datapath(), library, config)


def test_emulated_total_matches_software_estimator(library):
    """Core accuracy claim: in-circuit power == software macromodel power."""
    module = build_datapath()
    flat = flatten(module)
    reference = RTLPowerEstimator(flat, library=library).estimate(
        RandomTestbench(150, seed=42)
    )
    design = instrument(module, library, InstrumentationConfig(coefficient_bits=16))
    simulator = Simulator(design.module)
    simulator.run(RandomTestbench(150, seed=42))
    emulated_energy = design.read_total_energy_fj(simulator)
    assert emulated_energy == pytest.approx(reference.total_energy_fj, rel=0.01)


def test_emulated_per_component_breakdown(library):
    module = build_datapath()
    flat = flatten(module)
    reference = RTLPowerEstimator(flat, library=library).estimate(
        RandomTestbench(100, seed=1)
    )
    design = instrument(module, library, InstrumentationConfig(coefficient_bits=16))
    simulator = Simulator(design.module)
    simulator.run(RandomTestbench(100, seed=1))
    energies = design.component_energies_fj(simulator)
    assert set(energies) == set(design.model_map)
    for name, energy in energies.items():
        assert energy == pytest.approx(reference.components[name].energy_fj, rel=0.02)
    # per-component energies sum to the aggregator total
    assert sum(energies.values()) == pytest.approx(
        design.read_total_energy_fj(simulator), rel=0.01
    )


def test_coarser_quantization_increases_error(library):
    module = build_datapath()
    flat = flatten(module)
    reference = RTLPowerEstimator(flat, library=library).estimate(
        RandomTestbench(100, seed=3)
    )
    errors = {}
    platform = EmulationPlatform()
    for bits in (4, 16):
        design = instrument(module, library, InstrumentationConfig(coefficient_bits=bits))
        emulation = platform.run(design, RandomTestbench(100, seed=3))
        accuracy = compare_reports(emulation.power_report, reference)
        errors[bits] = abs(accuracy.relative_error)
    assert errors[16] <= errors[4]
    assert errors[16] < 0.01


def test_strobe_period_preserves_total_energy(library):
    """Accumulate-every-cycle models lose only the unflushed tail for period > 1.

    With a strobe period of N the models still observe every cycle; the only
    energy missing from the aggregator at the end of a run is whatever was
    accumulated since the last strobe (at most ~N+1 cycles' worth).
    """
    module = build_datapath()
    n_cycles = 120
    period = 4
    totals = {}
    for p in (1, period):
        design = instrument(
            module, library, InstrumentationConfig(strobe_period=p, coefficient_bits=16)
        )
        simulator = Simulator(design.module)
        simulator.run(RandomTestbench(n_cycles, seed=9))
        totals[p] = design.read_total_energy_fj(simulator)
    assert totals[period] <= totals[1] * 1.001
    # boundary loss is bounded by roughly (period + 1) / n_cycles of the total
    assert totals[period] >= totals[1] * (1.0 - (period + 2) / n_cycles)


def test_readback_requires_per_component_totals(library):
    config = InstrumentationConfig(per_component_totals=False)
    design = instrument(build_datapath(), library, config)
    simulator = Simulator(design.module)
    simulator.run(RandomTestbench(10, seed=0))
    assert design.accumulator_map == {}
    with pytest.raises(KeyError):
        design.read_component_energy_fj(simulator, "mult")
    # total power is still available
    assert design.read_total_energy_fj(simulator) >= 0.0
