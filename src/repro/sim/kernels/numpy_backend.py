"""Single-pass vectorized NumPy code generator for the kernel IR.

Prints a :class:`~repro.sim.kernels.ir.KernelIR` back into one exec-compiled
module holding ``_settle``/``_clock_edge`` plus a fused ``_cycle`` (settle
followed by clock edge in a single function call), all row-vectorized over
the ``(n_slots, n_lanes)`` store.  This is the portable fallback backend: it
runs everywhere NumPy runs, costs no compiler invocation, and — because it is
generated from the same IR the native backend consumes — stays bit-identical
to both the plain batch path and the C kernels.

State statements print as holder-attribute *rebinds* (``_h3.pending = ...``),
exactly the form the plain batch program uses, so the NumPy kernel pays no
extra per-row copies and is never slower than the per-op batch path; memory
arrays (which the batch program also mutates in place) bind directly.
Holder-facing features — lane views, memory backdoors, ``reset_state`` —
keep working unchanged because all state still lives on the holders.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.sim.batch import _popcount_u64
from repro.sim.kernels.ir import (
    Abs, Bin, Const, KernelIR, Lane, MemRead, MemWrite, Min, Popcount,
    Select, SetSlot, SetState, SetTemp, SlotRef, StateRef, Stmt, Table,
    TempRef, Unary, Where,
)


class _Printer:
    def __init__(self, ir: KernelIR) -> None:
        self.ir = ir
        #: unique holder object -> bound name
        self.holder_names: Dict[int, str] = {}
        self.holders: List[object] = []
        for holder, _, _ in ir.state_specs:
            if id(holder) not in self.holder_names:
                self.holder_names[id(holder)] = f"_h{len(self.holders)}"
                self.holders.append(holder)

    # ------------------------------------------------------------- locations
    def state(self, row: int) -> str:
        holder, field, index = self.ir.state_specs[row]
        name = self.holder_names[id(holder)]
        suffix = "" if index is None else f"[{index}]"
        return f"{name}.{field}{suffix}"

    # ------------------------------------------------------------ expressions
    def expr(self, x) -> str:
        e = self.expr
        if isinstance(x, Const):
            return repr(x.value)
        if isinstance(x, Lane):
            return "_lidx"
        if isinstance(x, SlotRef):
            return f"v[{x.slot}]"
        if isinstance(x, StateRef):
            return self.state(x.row)
        if isinstance(x, TempRef):
            return x.name
        if isinstance(x, Table):
            return f"_T{x.table}[{e(x.index)}]"
        if isinstance(x, MemRead):
            return f"_g{x.mem}[{e(x.addr)}, _lidx]"
        if isinstance(x, Unary):
            return f"(-({e(x.a)}))" if x.op == "neg" else f"(~({e(x.a)}))"
        if isinstance(x, Bin):
            return f"(({e(x.a)}) {x.op} ({e(x.b)}))"
        if isinstance(x, Where):
            return f"_where({e(x.cond)}, {e(x.a)}, {e(x.b)})"
        if isinstance(x, Min):
            return f"_minimum({e(x.a)}, {e(x.b)})"
        if isinstance(x, Abs):
            return f"_abs({e(x.a)})"
        if isinstance(x, Popcount):
            return f"_popcount({e(x.a)})"
        if isinstance(x, Select):
            choices = ", ".join(e(c) for c in x.choices)
            return f"_stack(({choices}))[{e(x.index)}, _lidx]"
        raise TypeError(f"unprintable IR node {x!r}")

    # ------------------------------------------------------------- statements
    def statement(self, stmt: Stmt) -> str:
        if isinstance(stmt, SetTemp):
            return f"{stmt.name} = {self.expr(stmt.expr)}"
        if isinstance(stmt, SetSlot):
            return f"v[{stmt.slot}] = {self.expr(stmt.expr)}"
        if isinstance(stmt, SetState):
            return f"{self.state(stmt.row)} = {self.expr(stmt.expr)}"
        if isinstance(stmt, MemWrite):
            mask = self.expr(stmt.enable)
            return (
                f"_g{stmt.mem}[({self.expr(stmt.addr)})[{mask}], "
                f"_lidx[{mask}]] = ({self.expr(stmt.data)})[{mask}]"
            )
        raise TypeError(f"unprintable IR statement {stmt!r}")


def generate_numpy_source(ir: KernelIR, printer: "_Printer" = None) -> str:
    """The fused NumPy module source for one extracted lane program."""
    printer = printer if printer is not None else _Printer(ir)
    lines: List[str] = []
    for phase, stmts in ir.phases.items():
        lines.append(f"def _{phase}(v):")
        body = [printer.statement(stmt) for stmt in stmts] or ["pass"]
        lines.extend("    " + line for line in body)
        lines.append("")
    if set(ir.phases) >= {"settle", "clock_edge"}:
        lines.append("def _cycle(v):")
        body = [
            printer.statement(stmt)
            for phase in ("settle", "clock_edge")
            for stmt in ir.phases[phase]
        ] or ["pass"]
        lines.extend("    " + line for line in body)
        lines.append("")
    return "\n".join(lines)


class NumpyKernel:
    """A fused, exec-compiled NumPy kernel over the live holder state."""

    backend = "numpy"

    def __init__(self, ir: KernelIR, n_lanes: int) -> None:
        self.ir = ir
        self.n_lanes = n_lanes
        printer = _Printer(ir)
        self.source = generate_numpy_source(ir, printer)
        namespace: Dict[str, object] = {
            "_where": np.where,
            "_minimum": np.minimum,
            "_abs": np.abs,
            "_stack": np.stack,
            "_popcount": _popcount_u64,
            "_lidx": np.arange(n_lanes),
        }
        for index, table in enumerate(ir.tables):
            namespace[f"_T{index}"] = table
        for holder, name in zip(printer.holders, printer.holder_names.values()):
            namespace[name] = holder
        for index, array in enumerate(ir.mem_arrays()):
            namespace[f"_g{index}"] = array
        namespace["__builtins__"] = {}
        exec(compile(self.source, "<lane-kernel:numpy>", "exec"), namespace)
        self._settle = namespace.get("_settle")
        self._clock_edge = namespace.get("_clock_edge")
        self._cycle = namespace.get("_cycle")

    #: NumPy kernels run single-threaded; :meth:`set_threads` is a no-op so
    #: callers can set a thread budget without caring which backend resolved.
    n_threads = 1

    def rebind(self) -> None:
        """No-op: state is reached through live holder attributes."""

    def set_threads(self, n_threads: int) -> None:
        """No-op: the NumPy backend has no worker pool."""

    def settle(self, v: np.ndarray) -> None:
        self._settle(v)

    def clock_edge(self, v: np.ndarray) -> None:
        self._clock_edge(v)

    def cycle(self, v: np.ndarray) -> None:
        self._cycle(v)
