"""Area overhead of the power-estimation hardware (the paper's closing concern).

The paper notes that "significant work remains to be done in addressing the
area occupied by the power estimation hardware".  This harness quantifies that
overhead for every benchmark design: FPGA resources of the bare design vs the
power-model-enhanced design, the smallest Virtex-II part each fits, and the
share of the enhanced design taken by the inserted hardware.
Writes ``benchmarks/results/area_overhead.txt``.
"""

from __future__ import annotations

import pytest

from repro.core import (
    InstrumentationConfig,
    SynthesisEstimator,
    instrument,
    smallest_fitting_device,
)
from repro.designs.registry import FIGURE3_ORDER, get_design
from repro.netlist import flatten

from conftest import write_result

_ROWS = {}


@pytest.mark.parametrize("design_name", FIGURE3_ORDER)
def test_area_overhead(benchmark, seed_library, design_name):
    design = get_design(design_name)
    module = design.build()
    estimator = SynthesisEstimator()

    def run():
        base = estimator.estimate_module(flatten(module))
        enhanced_design = instrument(module, seed_library, InstrumentationConfig())
        enhanced = estimator.estimate_module(enhanced_design.module)
        return base, enhanced, enhanced_design

    base, enhanced, enhanced_design = benchmark.pedantic(run, rounds=1, iterations=1)
    base_device = smallest_fitting_device(base.resources)
    enhanced_device = smallest_fitting_device(enhanced.resources)
    overhead = enhanced.resources.overhead_relative_to(base.resources)

    _ROWS[design_name] = {
        "base_luts": base.resources.luts,
        "enhanced_luts": enhanced.resources.luts,
        "base_ffs": base.resources.ffs,
        "enhanced_ffs": enhanced.resources.ffs,
        "lut_overhead": overhead["luts"],
        "ff_overhead": overhead["ffs"],
        "n_models": enhanced_design.n_power_models,
        "monitored_bits": enhanced_design.monitored_bits,
        "base_device": base_device.name if base_device else "none",
        "enhanced_device": enhanced_device.name if enhanced_device else "none",
    }
    benchmark.extra_info.update(_ROWS[design_name])

    # the estimation hardware always costs something, and the enhanced design
    # must still fit somewhere in the Virtex-II family for the flow to work
    assert enhanced.resources.luts > base.resources.luts
    assert enhanced_device is not None

    if len(_ROWS) == len(FIGURE3_ORDER):
        _write_table()


def _write_table() -> None:
    lines = [
        "Area overhead of the power-estimation hardware (Virtex-II mapping estimates)",
        "",
        f"{'design':12s} {'models':>7s} {'bits':>6s} {'base LUTs':>10s} {'enh. LUTs':>10s} "
        f"{'LUT ovh':>9s} {'base FFs':>9s} {'enh. FFs':>9s} {'FF ovh':>9s} "
        f"{'base part':>10s} {'enh. part':>10s}",
    ]
    for name in FIGURE3_ORDER:
        row = _ROWS[name]
        lines.append(
            f"{name:12s} {row['n_models']:7d} {row['monitored_bits']:6d} "
            f"{row['base_luts']:10d} {row['enhanced_luts']:10d} {row['lut_overhead']:8.1f}x "
            f"{row['base_ffs']:9d} {row['enhanced_ffs']:9d} {row['ff_overhead']:8.1f}x "
            f"{row['base_device']:>10s} {row['enhanced_device']:>10s}"
        )
    lines += [
        "",
        "The overhead is dominated by the per-bit value queues and the coefficient adder",
        "trees of the power models — the capacity concern the paper's conclusion raises.",
    ]
    write_result("area_overhead.txt", "\n".join(lines))
