"""Bit-vector value helpers.

All signal values in the RTL IR and simulator are plain non-negative Python
integers, interpreted as unsigned bit vectors of a given width.  Signed
interpretation uses two's complement.  These helpers centralize masking,
signed/unsigned conversion and bit-level manipulation so that every component
implements its semantics consistently.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence


def mask_value(value: int, width: int) -> int:
    """Truncate ``value`` to ``width`` bits (two's-complement wrap-around)."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    return value & ((1 << width) - 1)


def to_signed(value: int, width: int) -> int:
    """Interpret an unsigned ``width``-bit value as a two's-complement integer."""
    value = mask_value(value, width)
    sign_bit = 1 << (width - 1)
    if value & sign_bit:
        return value - (1 << width)
    return value


def from_signed(value: int, width: int) -> int:
    """Encode a (possibly negative) integer as an unsigned ``width``-bit value."""
    return mask_value(value, width)


def sign_extend(value: int, from_width: int, to_width: int) -> int:
    """Sign-extend ``value`` from ``from_width`` bits to ``to_width`` bits."""
    if to_width < from_width:
        raise ValueError(
            f"cannot sign-extend from {from_width} bits down to {to_width} bits"
        )
    return from_signed(to_signed(value, from_width), to_width)


def popcount(value: int) -> int:
    """Number of set bits in ``value``."""
    if value < 0:
        raise ValueError("popcount expects a non-negative integer")
    return bin(value).count("1")


def hamming_distance(a: int, b: int, width: int | None = None) -> int:
    """Number of differing bits between ``a`` and ``b``.

    If ``width`` is given, both values are first masked to that width; this is
    the per-component transition count ``sum_i T(x_i)`` used by the
    cycle-accurate power macromodels.
    """
    if width is not None:
        a = mask_value(a, width)
        b = mask_value(b, width)
    return popcount(a ^ b)


def bits_of(value: int, width: int) -> List[int]:
    """Return the bits of ``value`` LSB-first as a list of 0/1 integers."""
    value = mask_value(value, width)
    return [(value >> i) & 1 for i in range(width)]


def value_from_bits(bits: Sequence[int]) -> int:
    """Inverse of :func:`bits_of`: assemble an integer from LSB-first bits."""
    value = 0
    for i, bit in enumerate(bits):
        if bit not in (0, 1):
            raise ValueError(f"bit {i} is {bit!r}, expected 0 or 1")
        value |= bit << i
    return value


def iter_bit_toggles(prev: int, curr: int, width: int) -> Iterator[int]:
    """Yield per-bit toggle flags (0/1), LSB-first, between two values.

    This is exactly the ``T(x_i)`` term of the linear power macromodel and of
    the hardware power-model circuit (an XOR per monitored bit).
    """
    diff = mask_value(prev ^ curr, width)
    for i in range(width):
        yield (diff >> i) & 1


def max_unsigned(width: int) -> int:
    """Largest unsigned value representable in ``width`` bits."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    return (1 << width) - 1


def min_signed(width: int) -> int:
    """Smallest (most negative) signed value representable in ``width`` bits."""
    return -(1 << (width - 1))


def max_signed(width: int) -> int:
    """Largest signed value representable in ``width`` bits."""
    return (1 << (width - 1)) - 1


def saturate(value: int, width: int, signed: bool) -> int:
    """Clamp an integer into the representable range, returning the encoding."""
    if signed:
        lo, hi = min_signed(width), max_signed(width)
        clamped = min(max(value, lo), hi)
        return from_signed(clamped, width)
    clamped = min(max(value, 0), max_unsigned(width))
    return clamped
