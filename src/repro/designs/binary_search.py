"""The paper's Figure 1 example: an RTL binary-search circuit.

The datapath follows the figure: registers ``first``/``last``/``mid``/``out``,
an adder and a ``>> 1`` shifter computing the midpoint, an adder/subtractor
stepping the bounds by +1/-1, comparators, a data memory holding the sorted
table, and a Moore FSM controller sequencing the search.

Interface
---------
inputs  : ``start`` (1), ``key`` (W)
outputs : ``done`` (1), ``found`` (1), ``index`` (address width)

Protocol: drive ``key``, pulse ``start``; ``done`` is asserted for one cycle
with ``found``/``index`` valid (``index`` holds the match position when
``found`` is 1).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.netlist.builder import NetlistBuilder
from repro.netlist.module import Module
from repro.sim.testbench import Testbench
from repro.designs import stimuli

#: default table size (entries) and data width
DEFAULT_DEPTH = 64
DEFAULT_WIDTH = 16


def build(depth: int = DEFAULT_DEPTH, width: int = DEFAULT_WIDTH,
          table: Optional[Sequence[int]] = None) -> Module:
    """Build the binary-search circuit over a sorted table of ``depth`` entries."""
    if table is None:
        table = stimuli.random_sorted_array(depth, seed=1, width=width)
    if len(table) != depth:
        raise ValueError(f"table must have exactly {depth} entries")
    addr_width = max(1, (depth - 1).bit_length())

    b = NetlistBuilder("binary_search")
    start = b.input("start", 1)
    key = b.input("key", width)

    # ---------------------------------------------------------------- state
    first_q = b.register("reg_first", addr_width + 2, has_enable=True)
    last_q = b.register("reg_last", addr_width + 2, has_enable=True)
    mid_q = b.register("reg_mid", addr_width + 2, has_enable=True)
    out_q = b.register("reg_out", addr_width, has_enable=True)
    found_q = b.register("reg_found", 1, has_enable=True)

    # ------------------------------------------------------------- datapath
    # mid = (first + last) >> 1   (the adder + shifter of Fig. 1)
    mid_sum = b.add(first_q, last_q, name="mid_adder")
    mid_next = b.shr(mid_sum, 1, name="mid_shifter")

    # first/last stepping: mid +/- 1 through a shared adder/subtractor
    one = b.const(1, addr_width + 2, name="const_one")

    # table lookup (asynchronous ROM models the sorted data memory)
    data = b.rom("table", width, [v for v in table], b.slice(mid_q, addr_width - 1, 0))

    # comparators: key vs data, and range-empty check (first > last)
    key_lt, key_eq, key_gt = b.compare(key, data, name="cmp_key")
    range_gt = b.compare(first_q, last_q, signed=True, name="cmp_range")[2]

    # ----------------------------------------------------------- controller
    fsm, ctrl = b.fsm(
        "ctrl",
        states=["IDLE", "INIT", "CHECK", "COMPARE", "STEP_RIGHT", "STEP_LEFT",
                "FOUND", "NOTFOUND", "REPORT"],
        inputs={"start": start, "eq": key_eq, "gt": key_gt, "empty": range_gt},
        outputs={
            "init": 1,
            "first_en": 1,
            "last_en": 1,
            "mid_en": 1,
            "out_en": 1,
            "found_set": 1,
            "found_en": 1,
            "done": 1,
        },
        moore_outputs={
            "INIT": {"init": 1, "first_en": 1, "last_en": 1, "found_en": 1},
            "CHECK": {"mid_en": 1},
            "STEP_RIGHT": {"first_en": 1},
            "STEP_LEFT": {"last_en": 1},
            # result registers capture in FOUND/NOTFOUND and are reported (with
            # done high) in the following REPORT state
            "FOUND": {"out_en": 1, "found_set": 1, "found_en": 1},
            "NOTFOUND": {"found_en": 1},
            "REPORT": {"done": 1},
        },
    )
    fsm.when("IDLE", "INIT", start=1)
    fsm.otherwise("INIT", "CHECK")
    fsm.when("CHECK", "NOTFOUND", empty=1)
    fsm.otherwise("CHECK", "COMPARE")
    fsm.when("COMPARE", "FOUND", eq=1)
    fsm.when("COMPARE", "STEP_RIGHT", gt=1)
    fsm.otherwise("COMPARE", "STEP_LEFT")
    fsm.otherwise("STEP_RIGHT", "CHECK")
    fsm.otherwise("STEP_LEFT", "CHECK")
    fsm.otherwise("FOUND", "REPORT")
    fsm.otherwise("NOTFOUND", "REPORT")
    fsm.otherwise("REPORT", "IDLE")

    # --------------------------------------------------------- state update
    step_up = b.add(mid_q, one, name="step_adder")      # mid + 1
    step_down = b.sub(mid_q, one, name="step_subber")   # mid - 1
    zero = b.const(0, addr_width + 2, name="const_zero")
    limit = b.const(depth - 1, addr_width + 2, name="const_limit")

    b.drive("reg_first", d=b.mux(ctrl["init"], step_up, zero, name="first_mux"),
            en=ctrl["first_en"])
    b.drive("reg_last", d=b.mux(ctrl["init"], step_down, limit, name="last_mux"),
            en=ctrl["last_en"])
    b.drive("reg_mid", d=mid_next, en=ctrl["mid_en"])
    b.drive("reg_out", d=b.slice(mid_q, addr_width - 1, 0), en=ctrl["out_en"])
    b.drive("reg_found", d=ctrl["found_set"], en=ctrl["found_en"])

    b.output("done", ctrl["done"])
    b.output("found", found_q)
    b.output("index", out_q)

    module = b.build()
    module.attributes["table"] = list(table)
    module.attributes["description"] = "Fig. 1 binary search example circuit"
    return module


class BinarySearchTestbench(Testbench):
    """Searches a sequence of keys and checks found/index against the table."""

    def __init__(self, module: Module, keys: Sequence[int], name: str = "binary_search_tb") -> None:
        super().__init__(name)
        self.table: List[int] = list(module.attributes["table"])
        self.keys = list(keys)
        self._key_index = 0
        self._searching = False
        self._checked = 0
        self.max_cycles = 40 * max(1, len(self.keys))

    def drive(self, cycle: int, simulator):
        if self._key_index >= len(self.keys):
            return {"start": 0}
        if not self._searching:
            self._searching = True
            return {"start": 1, "key": self.keys[self._key_index]}
        return {"start": 0, "key": self.keys[self._key_index]}

    def check(self, cycle: int, simulator) -> None:
        if self._searching and simulator.get_output("done"):
            key = self.keys[self._key_index]
            found = simulator.get_output("found")
            index = simulator.get_output("index")
            if key in self.table:
                assert found == 1, f"key {key} should have been found"
                assert self.table[index] == key, (
                    f"index {index} holds {self.table[index]}, expected {key}"
                )
            else:
                assert found == 0, f"key {key} reported found but is absent"
            self._checked += 1
            self._key_index += 1
            self._searching = False

    def finished(self, cycle: int, simulator) -> bool:
        return self._key_index >= len(self.keys)

    def captured(self):
        return {"searches_checked": self._checked}


def testbench(n_searches: int = 8, seed: int = 3,
              module: Optional[Module] = None) -> BinarySearchTestbench:
    """Standard stimulus: a mix of present and absent keys."""
    target = module if module is not None else build()
    table = list(target.attributes["table"])
    import random

    rng = random.Random(seed)
    keys = []
    for i in range(n_searches):
        if i % 2 == 0:
            keys.append(rng.choice(table))
        else:
            keys.append(rng.getrandbits(DEFAULT_WIDTH))
    return BinarySearchTestbench(target, keys)
