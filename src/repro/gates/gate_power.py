"""Gate-level power computation.

Dynamic energy of one input-vector transition is the sum over toggled nets of
``1/2 * C_load * Vdd^2`` plus the internal energy of the driving cell; static
power is the sum of cell leakage.  The resulting energies are the reference
values that the macromodel characterization engine regresses against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.gates.cells import CB013_LIBRARY, StandardCellLibrary
from repro.gates.gate_netlist import GateNetlist
from repro.gates.gatesim import GateLevelSimulator


@dataclass
class GateTransitionEnergy:
    """Energy breakdown of one vector-to-vector transition."""

    switching_fj: float
    internal_fj: float
    n_toggled_nets: int

    @property
    def total_fj(self) -> float:
        return self.switching_fj + self.internal_fj


@dataclass
class BatchTransitionEnergy:
    """Per-lane energy breakdown of ``n_lanes`` independent transitions."""

    #: (n_lanes,) switching energy per lane
    switching_fj: np.ndarray
    #: (n_lanes,) cell-internal energy per lane
    internal_fj: np.ndarray
    #: (n_lanes,) number of toggled physical nets per lane
    n_toggled_nets: np.ndarray

    @property
    def total_fj(self) -> np.ndarray:
        return self.switching_fj + self.internal_fj

    @property
    def n_lanes(self) -> int:
        return self.switching_fj.shape[0]


class GatePowerCalculator:
    """Computes dynamic energy and leakage for a gate netlist."""

    def __init__(
        self,
        netlist: GateNetlist,
        library: StandardCellLibrary = CB013_LIBRARY,
    ) -> None:
        self.netlist = netlist
        self.library = library
        self.loads_ff = netlist.load_capacitance_ff(library)
        self._driver_cell = {gate.output: gate.cell for gate in netlist.gates}
        self._physical_nets = [
            net
            for net in netlist.all_nets()
            if net not in netlist.aliases and net not in netlist.constants
        ]
        #: lazily built per-slot weight vectors for the batched energy path
        self._slot_weights: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    # -------------------------------------------------------------- dynamic
    def transition_energy(
        self,
        previous: Mapping[str, int],
        current: Mapping[str, int],
    ) -> GateTransitionEnergy:
        """Energy of moving the network from ``previous`` to ``current`` values."""
        switching = 0.0
        internal = 0.0
        toggled = 0
        for net in self._physical_nets:
            if previous.get(net, 0) == current.get(net, 0):
                continue
            toggled += 1
            switching += self.library.switching_energy_fj(self.loads_ff.get(net, 0.0))
            cell = self._driver_cell.get(net)
            if cell is not None:
                internal += cell.intrinsic_energy_fj
        return GateTransitionEnergy(switching, internal, toggled)

    def vector_pair_energy(
        self,
        simulator: GateLevelSimulator,
        first_ports: Mapping[str, int],
        second_ports: Mapping[str, int],
        port_widths: Mapping[str, int],
    ) -> GateTransitionEnergy:
        """Convenience: energy of applying ``first`` then ``second`` port vectors."""
        simulator.evaluate_ports(first_ports, port_widths)
        before = simulator.snapshot()
        simulator.evaluate_ports(second_ports, port_widths)
        after = simulator.snapshot()
        return self.transition_energy(before, after)

    # ---------------------------------------------------------------- batched
    def _weights(self, simulator: GateLevelSimulator) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-slot (physical-mask, switching, internal) weight vectors.

        One matrix-vector product against a lane-array toggle matrix then
        yields every lane's transition energy at once — the vectorized form of
        the per-net loop in :meth:`transition_energy`.
        """
        if self._slot_weights is None:
            slots = simulator.program.slots
            n_slots = simulator.program.n_slots
            phys = np.zeros(n_slots, dtype=bool)
            w_switch = np.zeros(n_slots, dtype=np.float64)
            w_internal = np.zeros(n_slots, dtype=np.float64)
            for net in self._physical_nets:
                slot = slots[net]
                phys[slot] = True
                w_switch[slot] += self.library.switching_energy_fj(
                    self.loads_ff.get(net, 0.0)
                )
                cell = self._driver_cell.get(net)
                if cell is not None:
                    w_internal[slot] += cell.intrinsic_energy_fj
            self._slot_weights = (phys, w_switch, w_internal)
        return self._slot_weights

    def transition_energy_batch(
        self,
        simulator: GateLevelSimulator,
        before: np.ndarray,
        after: np.ndarray,
    ) -> BatchTransitionEnergy:
        """Per-lane energies between two ``(n_slots, n_lanes)`` snapshots."""
        phys, w_switch, w_internal = self._weights(simulator)
        diff = (before != after) & phys[:, None]
        return BatchTransitionEnergy(
            switching_fj=w_switch @ diff,
            internal_fj=w_internal @ diff,
            n_toggled_nets=diff.sum(axis=0),
        )

    def vector_pair_energy_batch(
        self,
        simulator: GateLevelSimulator,
        first_ports: Mapping[str, np.ndarray],
        second_ports: Mapping[str, np.ndarray],
        port_widths: Mapping[str, int],
    ) -> BatchTransitionEnergy:
        """Vectorized :meth:`vector_pair_energy`: ``n_lanes`` pairs in one pass.

        Each mapping holds ``(n_lanes,)`` arrays of port values; lane ``i`` of
        the result is the energy of applying ``first[i]`` then ``second[i]``.
        """
        simulator.evaluate_ports_batch(first_ports, port_widths)
        before = simulator.snapshot_batch()
        simulator.evaluate_ports_batch(second_ports, port_widths)
        after = simulator.snapshot_batch()
        return self.transition_energy_batch(simulator, before, after)

    def run_vector_sequence(
        self,
        vectors: Sequence[Mapping[str, int]],
        port_widths: Mapping[str, int],
        simulator: Optional[GateLevelSimulator] = None,
    ) -> List[GateTransitionEnergy]:
        """Apply a sequence of port vectors; return per-transition energies.

        The returned list has ``len(vectors) - 1`` entries (one per transition).
        """
        if simulator is None:
            simulator = GateLevelSimulator(self.netlist)
        simulator.reset()
        energies: List[GateTransitionEnergy] = []
        previous_snapshot: Optional[Dict[str, int]] = None
        for vector in vectors:
            simulator.evaluate_ports(vector, port_widths)
            snapshot = simulator.snapshot()
            if previous_snapshot is not None:
                energies.append(self.transition_energy(previous_snapshot, snapshot))
            previous_snapshot = snapshot
        return energies

    # --------------------------------------------------------------- static
    def leakage_power_nw(self) -> float:
        return self.netlist.total_leakage_nw()

    def area_um2(self) -> float:
        return self.netlist.total_area_um2()
