"""Tests for gate-level simulation details and power computation."""

from __future__ import annotations

import pytest

from repro.gates import (
    GateLevelSimulator,
    GatePowerCalculator,
    TechnologyMapper,
)
from repro.gates.gate_netlist import GateNetlist, bit_net
from repro.gates.cells import CB013_LIBRARY
from repro.netlist.components import Adder, Multiplier

MAPPER = TechnologyMapper()


def test_gatesim_detects_combinational_cycle():
    netlist = GateNetlist("cyclic")
    netlist.add_input("a")
    inv = CB013_LIBRARY.cell("INV")
    and2 = CB013_LIBRARY.cell("AND2")
    netlist.add_gate(and2, ["a", "loop"], "x")
    netlist.add_gate(inv, ["x"], "loop")
    with pytest.raises(ValueError, match="cycle"):
        GateLevelSimulator(netlist)


def test_alias_cycle_detected():
    netlist = GateNetlist("aliascycle")
    netlist.add_alias("p", "q")
    netlist.add_alias("q", "p")
    netlist.add_input("a")
    netlist.add_gate(CB013_LIBRARY.cell("INV"), ["p"], "y")
    with pytest.raises(ValueError, match="alias cycle"):
        GateLevelSimulator(netlist).evaluate({"a": 1})


def test_zero_transition_zero_energy():
    adder = Adder("a", 8)
    netlist = MAPPER.map_component(adder)
    calc = GatePowerCalculator(netlist)
    sim = GateLevelSimulator(netlist)
    widths = {"a": 8, "b": 8, "y": 8}
    energies = calc.run_vector_sequence(
        [{"a": 12, "b": 7}, {"a": 12, "b": 7}, {"a": 12, "b": 7}], widths, sim
    )
    assert len(energies) == 2
    assert energies[0].total_fj == 0.0
    assert energies[1].total_fj == 0.0


def test_more_toggles_more_energy():
    adder = Adder("a", 8)
    netlist = MAPPER.map_component(adder)
    calc = GatePowerCalculator(netlist)
    widths = {"a": 8, "b": 8, "y": 8}
    quiet = calc.run_vector_sequence([{"a": 0, "b": 0}, {"a": 1, "b": 0}], widths)
    busy = calc.run_vector_sequence([{"a": 0, "b": 0}, {"a": 0xFF, "b": 0xFF}], widths)
    assert busy[0].total_fj > quiet[0].total_fj > 0.0
    assert busy[0].n_toggled_nets > quiet[0].n_toggled_nets


def test_multiplier_consumes_more_than_adder():
    widths = {"a": 8, "b": 8, "y": 16}
    vectors = [{"a": 0, "b": 0}, {"a": 0xAA, "b": 0x55}, {"a": 0x55, "b": 0xAA}]
    add_netlist = MAPPER.map_component(Adder("a", 8))
    mul_netlist = MAPPER.map_component(Multiplier("m", 8))
    add_energy = sum(
        e.total_fj
        for e in GatePowerCalculator(add_netlist).run_vector_sequence(
            vectors, {"a": 8, "b": 8, "y": 8}
        )
    )
    mul_energy = sum(
        e.total_fj
        for e in GatePowerCalculator(mul_netlist).run_vector_sequence(vectors, widths)
    )
    assert mul_energy > 3 * add_energy


def test_vector_pair_energy_and_leakage():
    adder = Adder("a", 8)
    netlist = MAPPER.map_component(adder)
    calc = GatePowerCalculator(netlist)
    sim = GateLevelSimulator(netlist)
    widths = {"a": 8, "b": 8, "y": 8}
    energy = calc.vector_pair_energy(sim, {"a": 0, "b": 0}, {"a": 255, "b": 255}, widths)
    assert energy.total_fj > 0
    assert energy.switching_fj > 0
    assert energy.internal_fj > 0
    assert calc.leakage_power_nw() > 0
    assert calc.area_um2() == netlist.total_area_um2()


def test_energy_breakdown_consistency():
    netlist = MAPPER.map_component(Adder("a", 4))
    calc = GatePowerCalculator(netlist)
    widths = {"a": 4, "b": 4, "y": 4}
    energies = calc.run_vector_sequence([{"a": 0, "b": 0}, {"a": 0xF, "b": 0xF}], widths)
    e = energies[0]
    assert e.total_fj == pytest.approx(e.switching_fj + e.internal_fj)


def test_bit_net_naming_and_snapshot():
    assert bit_net("data", 3) == "data[3]"
    netlist = MAPPER.map_component(Adder("a", 4))
    sim = GateLevelSimulator(netlist)
    sim.evaluate_ports({"a": 5, "b": 3}, {"a": 4, "b": 4, "y": 4})
    snap = sim.snapshot()
    assert snap["a[0]"] == 1 and snap["a[1]"] == 0
    # snapshot is an independent copy
    snap["a[0]"] = 0
    assert sim.values["a[0]"] == 1
