"""Simulation-level tests for every NetlistBuilder operation.

These complement the per-component unit tests: each builder helper is
exercised through the full build -> flatten -> simulate path, including the
width-inference and resize behaviour that the component tests cannot see.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist import NetlistBuilder, flatten
from repro.netlist.signals import from_signed, to_signed
from repro.sim import Simulator


def run_combinational(build_fn, inputs):
    """Build a module with ``build_fn(builder)``, drive inputs, return outputs."""
    b = NetlistBuilder("dut")
    build_fn(b)
    sim = Simulator(flatten(b.build()))
    sim.set_inputs(inputs)
    sim.settle()
    return sim


def test_absval_and_saturate_ops():
    def build(b):
        a = b.input("a", 8)
        b.output("mag", b.absval(a))
        b.output("sat", b.saturate(b.sext(a, 12), 6, signed=True))

    sim = run_combinational(build, {"a": from_signed(-100, 8)})
    assert sim.get_output("mag") == 100
    assert to_signed(sim.get_output("sat"), 6) == -32


def test_compare_and_eq_ops():
    def build(b):
        a = b.input("a", 8)
        c = b.input("c", 8)
        lt, eq, gt = b.compare(a, c, signed=True)
        b.output("lt", lt)
        b.output("eq", eq)
        b.output("gt", gt)
        b.output("same_as_5", b.eq(a, 5))

    sim = run_combinational(build, {"a": from_signed(-3, 8), "c": 2})
    assert sim.get_output("lt") == 1
    assert sim.get_output("gt") == 0
    assert sim.get_output("same_as_5") == 0


def test_shift_ops_constant_and_variable():
    def build(b):
        a = b.input("a", 8)
        amount = b.input("amount", 3)
        b.output("shl_const", b.shl(a, 2))
        b.output("shr_var", b.shr(a, amount))
        b.output("sra", b.shr(a, 1, arithmetic=True))

    sim = run_combinational(build, {"a": 0x81, "amount": 4})
    assert sim.get_output("shl_const") == (0x81 << 2) & 0xFF
    assert sim.get_output("shr_var") == 0x81 >> 4
    assert sim.get_output("sra") == from_signed(to_signed(0x81, 8) >> 1, 8)


def test_logic_reduce_not_decoder_bit_ops():
    def build(b):
        a = b.input("a", 4)
        c = b.input("c", 4)
        b.output("x", b.xor_(a, c))
        b.output("n", b.not_(a))
        b.output("any", b.reduce("or", a))
        b.output("all", b.reduce("and", a))
        b.output("onehot", b.decoder(a))
        b.output("msb", b.bit(a, 3))

    sim = run_combinational(build, {"a": 0b1010, "c": 0b0110})
    assert sim.get_output("x") == 0b1100
    assert sim.get_output("n") == 0b0101
    assert sim.get_output("any") == 1
    assert sim.get_output("all") == 0
    assert sim.get_output("onehot") == 1 << 0b1010
    assert sim.get_output("msb") == 1


def test_concat_slice_resize_ops():
    def build(b):
        lo = b.input("lo", 4)
        hi = b.input("hi", 4)
        word = b.concat(lo, hi)
        b.output("word", word)
        b.output("upper", b.slice(word, 7, 4))
        b.output("narrow", b.resize(word, 3))
        b.output("wide_signed", b.resize(b.slice(word, 3, 0), 8, signed=True))

    sim = run_combinational(build, {"lo": 0xD, "hi": 0xA})
    assert sim.get_output("word") == 0xAD
    assert sim.get_output("upper") == 0xA
    assert sim.get_output("narrow") == 0xD & 0x7
    assert sim.get_output("wide_signed") == from_signed(to_signed(0xD, 4), 8)


def test_addsub_and_mul_signed_ops():
    def build(b):
        a = b.input("a", 8)
        c = b.input("c", 8)
        sel = b.input("sel", 1)
        b.output("as_result", b.addsub(a, c, sel))
        b.output("prod", b.mul(a, c, signed=True, width_y=16))

    sim = run_combinational(build, {"a": 10, "c": from_signed(-3, 8), "sel": 1})
    assert sim.get_output("as_result") == (10 - from_signed(-3, 8)) & 0xFF
    assert to_signed(sim.get_output("prod"), 16) == -30
    sim.set_input("sel", 0)
    sim.settle()
    assert sim.get_output("as_result") == (10 + from_signed(-3, 8)) & 0xFF


def test_regfile_and_counter_ops():
    b = NetlistBuilder("dut")
    we = b.input("we", 1)
    waddr = b.input("waddr", 3)
    wdata = b.input("wdata", 8)
    raddr = b.input("raddr", 3)
    (rdata,) = b.regfile("rf", 8, 8, we=we, waddr=waddr, wdata=wdata, raddrs=[raddr])
    b.output("rdata", rdata)
    count = b.counter("cnt", 4, wrap_at=5)
    b.drive("cnt", en=we)
    b.output("count", count)
    sim = Simulator(flatten(b.build()))
    for i in range(7):
        sim.step({"we": 1, "waddr": i % 8, "wdata": i * 11, "raddr": 0})
    sim.settle()
    assert sim.get_output("rdata") == 0
    sim.set_input("raddr", 3)
    sim.settle()
    assert sim.get_output("rdata") == 33
    assert sim.get_output("count") == 7 % 5


def test_pipe_and_accumulator_chain():
    b = NetlistBuilder("dut")
    d = b.input("d", 8)
    staged = b.pipe(b.pipe(d))
    acc = b.accumulator("acc", 12)
    b.drive("acc", d=b.zext(staged, 12), en=b.const(1, 1), clear=b.const(0, 1))
    b.output("acc", acc)
    sim = Simulator(flatten(b.build()))
    for value in (5, 7, 9, 0, 0):
        sim.step({"d": value})
    sim.settle()
    # two pipeline stages delay the accumulation by two cycles
    assert sim.get_output("acc") == 5 + 7 + 9


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
def test_mux_tree_property(a, c, d):
    b = NetlistBuilder("dut")
    sel = b.input("sel", 2)
    ia = b.input("a", 8)
    ic = b.input("c", 8)
    id_ = b.input("d", 8)
    b.output("y", b.mux(sel, ia, ic, id_))
    sim = Simulator(flatten(b.build()))
    for sel_value, expected in [(0, a), (1, c), (2, d), (3, d)]:
        sim.set_inputs({"sel": sel_value, "a": a, "c": c, "d": d})
        sim.settle()
        assert sim.get_output("y") == expected


@settings(max_examples=25, deadline=None)
@given(st.integers(-128, 127), st.integers(-128, 127))
def test_signed_datapath_property(x, y):
    """(x + y) and (x - y) through the builder match Python within 9 bits."""
    b = NetlistBuilder("dut")
    a = b.input("a", 8)
    c = b.input("c", 8)
    b.output("sum", b.add(b.sext(a, 9), b.sext(c, 9)))
    b.output("diff", b.sub(b.sext(a, 9), b.sext(c, 9)))
    sim = Simulator(flatten(b.build()))
    sim.set_inputs({"a": from_signed(x, 8), "c": from_signed(y, 8)})
    sim.settle()
    assert to_signed(sim.get_output("sum"), 9) == x + y
    assert to_signed(sim.get_output("diff"), 9) == x - y
