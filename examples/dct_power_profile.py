"""Power profile of the DCT benchmark: per-component breakdown and activity.

Runs the 2-D DCT engine on a block of pixels, produces

* the per-component / per-type power breakdown from the software RTL estimator,
* the per-cycle power trace (peak vs average),
* a VCD dump of the busiest nets and the switching activity extracted from it
  (the conventional flow that power emulation makes unnecessary),
* the same design's power as read back from the emulated, instrumented design.

Run:  python examples/dct_power_profile.py
"""

from __future__ import annotations

from repro.api import RunSpec, estimate
from repro.designs import dct
from repro.netlist import flatten
from repro.sim import Simulator, SignalTrace, WaveformRecorder
from repro.vcd import activity_from_vcd, vcd_string


def main() -> None:
    # -------------------------------------------------- software power profile
    result = estimate(RunSpec(design="DCT", engine="rtl", seed=1,
                              keep_cycle_trace=True))
    report = result.report
    print("=== software RTL power profile (1 block) ===")
    print(report.table(n=12))
    print()
    print("energy by component type:")
    for type_name, energy in sorted(report.energy_by_type().items(),
                                    key=lambda kv: kv[1], reverse=True):
        print(f"  {type_name:16s} {energy:12.1f} fJ  ({energy / report.total_energy_fj:5.1%})")
    print()
    print(f"peak power {report.peak_power_mw:.4f} mW vs average {report.average_power_mw:.4f} mW")
    print()

    # ------------------------------------------- conventional VCD-based activity
    # (signal tracing hooks below the unified API: raw simulator observers)
    sim = Simulator(flatten(dct.build()))
    trace = sim.add_observer(SignalTrace())
    recorder = sim.add_observer(WaveformRecorder())
    sim.run(dct.testbench(n_blocks=1, seed=1))
    print("=== switching activity (top nets) ===")
    for stat in trace.densest(8):
        print(f"  {stat.net.name:28s} toggles={stat.toggles:8d} density={stat.toggle_density:.3f}")
    busiest = {s.net.name: recorder.by_name()[s.net.name] for s in trace.densest(8)}
    vcd_text = vcd_string(busiest, module_name="dct")
    summary = activity_from_vcd(vcd_text)
    print(f"  VCD dump of the 8 busiest nets: {len(vcd_text)} bytes, "
          f"{summary.total_toggles()} toggles recorded")
    print()

    # ----------------------------------------------------------- emulated power
    nominal_blocks = 4 * 396                  # four QCIF frames
    emulated = estimate(RunSpec(design="DCT", engine="emulation", seed=1,
                                workload_cycles=nominal_blocks * 2400,
                                compare_to_rtl=True))
    print("=== power emulation of the same design ===")
    print(emulated.summary())
    print(f"  device {emulated.metadata['device']} "
          f"@ {emulated.metadata['emulation_clock_mhz']:.1f} MHz, "
          f"LUT overhead {emulated.metadata['lut_overhead']:.1%}, "
          f"modeled emulation time {emulated.timing['modeled_total_s']:.3f} s")


if __name__ == "__main__":
    main()
