"""Sharded, cached Figure 3 harness: shard parity, cache economics, scaling.

The Fig. 3 study is embarrassingly parallel across designs, so
:mod:`repro.bench.shard` computes one design per process-pool worker and
:mod:`repro.bench.cache` persists finished rows keyed by (design, config,
code fingerprint).  This harness checks the moving parts end to end:

* a pool-sharded run produces bit-identical rows to the serial path,
* a repeat run against a warm cache costs ~nothing (every row a disk hit),
* the serial-vs-sharded wall times are reported for the scaling trend.

Scaling is reported, not asserted: near-linear scaling to N workers needs
N idle cores and per-design work that dominates worker startup; single-core
CI boxes (and this container) run the pool serially by necessity.
Writes ``benchmarks/results/fig3_sharding.txt``.
"""

from __future__ import annotations

import time

from repro.bench import Fig3Study, ResultCache, StudyConfig, run_sharded
from repro.designs.registry import FIGURE3_ORDER

from conftest import write_result

#: small design subset keeps the pool demonstration fast on 1-core runners
_SHARD_DESIGNS = ["Bubble_Sort", "HVPeakF", "Ispq", "Vld"]


def test_fig3_sharded_matches_serial(benchmark, tmp_path):
    serial = run_sharded(_SHARD_DESIGNS, n_workers=1)
    sharded = benchmark.pedantic(
        run_sharded, args=(_SHARD_DESIGNS,), kwargs={"n_workers": 2}, rounds=1, iterations=1
    )
    assert sharded.n_workers == 2
    for name in _SHARD_DESIGNS:
        ours, theirs = serial.rows[name], sharded.rows[name]
        # modeled quantities are deterministic; measured wall-clocks are not
        assert ours.monitored_bits == theirs.monitored_bits
        assert ours.nominal_cycles == theirs.nominal_cycles
        assert ours.time_nec_s == theirs.time_nec_s
        assert ours.time_powertheater_s == theirs.time_powertheater_s
        assert ours.time_emulation_s == theirs.time_emulation_s
        assert ours.average_power_mw == theirs.average_power_mw
        assert ours.emulated_power_mw == theirs.emulated_power_mw
    benchmark.extra_info.update(
        {
            "serial_s": round(serial.wall_time_s, 2),
            "sharded_2w_s": round(sharded.wall_time_s, 2),
            "scaling_2w": round(serial.wall_time_s / sharded.wall_time_s, 2),
        }
    )

    lines = [
        "Sharded Fig. 3 harness — pool parity and scaling trend",
        "",
        f"designs: {', '.join(_SHARD_DESIGNS)}",
        f"serial wall time:     {serial.wall_time_s:8.2f} s",
        f"2-worker wall time:   {sharded.wall_time_s:8.2f} s "
        f"(x{serial.wall_time_s / sharded.wall_time_s:.2f})",
        "",
        "per-design serial compute times:",
    ]
    for (name, _), seconds in serial.task_times_s.items():
        lines.append(f"  {name:12s} {seconds:6.2f} s")
    lines += [
        "",
        "note: near-linear scaling to N workers requires N idle cores and",
        "per-design work >> worker startup; pool parity above is asserted,",
        "the scaling factor is environment-dependent and only reported.",
    ]
    write_result("fig3_sharding.txt", "\n".join(lines))


def test_fig3_cache_makes_repeat_runs_free(tmp_path):
    cache = ResultCache(str(tmp_path), namespace="fig3")
    config = StudyConfig()

    cold = Fig3Study(config=config, cache=cache)
    start = time.perf_counter()
    cold_rows = cold.ensure_all()
    cold_s = time.perf_counter() - start
    assert not any(cold.cache_hits.values())

    warm = Fig3Study(config=config, cache=cache)
    start = time.perf_counter()
    warm_rows = warm.ensure_all()
    warm_s = time.perf_counter() - start
    assert all(warm.cache_hits[name] for name in FIGURE3_ORDER)
    assert warm_s < cold_s * 0.25, (
        f"cached repeat run should be ~free: cold {cold_s:.2f}s vs warm {warm_s:.2f}s"
    )
    for before, after in zip(cold_rows, warm_rows):
        assert before.design == after.design
        assert before.time_emulation_s == after.time_emulation_s
        assert before.monitored_bits == after.monitored_bits
