"""DCT benchmark: 2-D 8x8 forward discrete cosine transform engine."""

from __future__ import annotations

from repro.designs import stimuli, transform
from repro.netlist.module import Module


def build() -> Module:
    """Forward-DCT instance of the shared transform engine."""
    module = transform.build_transform("DCT", forward=True)
    return module


def testbench(n_blocks: int = 1, seed: int = 2) -> transform.TransformTestbench:
    """Standard stimulus: pseudo-random pixel blocks (level-shifted to signed)."""
    blocks = [
        [p - 128 for p in stimuli.random_pixel_block(seed=seed + i)]
        for i in range(n_blocks)
    ]
    return transform.TransformTestbench(blocks, forward=True, name="dct_tb")
