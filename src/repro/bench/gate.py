"""Perf-trajectory gating: compare fresh BENCH_*.json against baselines.

Every benchmark harness leaves a repo-root ``BENCH_<name>.json`` summary
behind (:func:`benchmarks.conftest.write_result`), carrying the harness's
headline metrics.  Those files are committed, so the repository itself holds
the performance trajectory — and a fresh run can be *gated* against it:

    python -m repro.bench.gate --baseline-dir .bench-baseline --current-dir .

Metrics are classified by name: rates (``*_per_s``) and ``speedup_*`` are
higher-is-better, wall times (``*_time_s``, ``*_wall_s``) lower-is-better;
configuration values (``n_lanes``, ``host_cores``, non-numeric entries, …)
are ignored.  A metric that regresses by more than the warn fraction
(default 15%) is reported; past the fail fraction (default 40%) the gate
exits non-zero.  The asymmetric thresholds absorb shared-runner noise while
still catching real cliffs — a kernel silently falling back to the per-op
path loses far more than 40%.

Improvements never gate, and a metric present on only one side is reported
as informational (new benchmarks land without baselines; retired ones
disappear).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: gate thresholds: fractional regression that warns / fails the run
WARN_FRACTION = 0.15
FAIL_FRACTION = 0.40


def classify_metric(name: str) -> Optional[str]:
    """``"higher"``/``"lower"`` for gateable metrics, ``None`` to skip.

    Anything unrecognized is skipped rather than guessed: gating a
    configuration constant (lane counts, seeds) as a rate would make every
    run a false regression.
    """
    if name.startswith("n_") or name in ("host_cores", "seed", "seeds"):
        return None
    if "_per_s" in name or name.startswith("speedup"):
        return "higher"
    if name.endswith(("_time_s", "_wall_s", "_seconds")):
        return "lower"
    # *_overhead_pct / *_ns micro-measurements are deliberately NOT gated:
    # they hover near zero, so baseline/current ratios amplify noise into
    # false regressions — the harness that emits them asserts its own
    # absolute budget instead (e.g. bench_obs_overhead's < 2% ceiling)
    return None


@dataclass
class GateFinding:
    """One gated metric's baseline-vs-current comparison."""

    bench: str
    metric: str
    baseline: float
    current: float
    #: current performance relative to baseline (1.0 = unchanged, < 1 = worse)
    ratio: float
    #: "ok", "warn", "fail", or "info" (unpaired metric, never gates)
    severity: str

    def describe(self) -> str:
        if self.severity == "info":
            side = "baseline" if self.current != self.current else "current"
            return f"{self.bench}.{self.metric}: only in {side} run"
        return (
            f"{self.bench}.{self.metric}: {self.baseline:g} -> {self.current:g} "
            f"({(self.ratio - 1.0) * 100.0:+.1f}%)"
        )


def gate_metrics(
    bench: str,
    baseline: Mapping[str, object],
    current: Mapping[str, object],
    warn_fraction: float = WARN_FRACTION,
    fail_fraction: float = FAIL_FRACTION,
) -> List[GateFinding]:
    """Compare one benchmark's metric dicts; returns every gateable pairing."""
    if not 0.0 < warn_fraction <= fail_fraction < 1.0:
        raise ValueError(
            f"need 0 < warn <= fail < 1, got warn={warn_fraction} "
            f"fail={fail_fraction}"
        )
    findings: List[GateFinding] = []
    for name in sorted(set(baseline) | set(current)):
        direction = classify_metric(name)
        if direction is None:
            continue
        base, curr = baseline.get(name), current.get(name)
        if not isinstance(base, (int, float)) or not isinstance(curr, (int, float)):
            missing = float("nan")
            findings.append(GateFinding(
                bench=bench, metric=name,
                baseline=base if isinstance(base, (int, float)) else missing,
                current=curr if isinstance(curr, (int, float)) else missing,
                ratio=missing, severity="info",
            ))
            continue
        if base <= 0 or curr <= 0:
            continue  # degenerate measurements cannot be gated as ratios
        ratio = curr / base if direction == "higher" else base / curr
        if ratio < 1.0 - fail_fraction:
            severity = "fail"
        elif ratio < 1.0 - warn_fraction:
            severity = "warn"
        else:
            severity = "ok"
        findings.append(GateFinding(
            bench=bench, metric=name, baseline=float(base), current=float(curr),
            ratio=ratio, severity=severity,
        ))
    return findings


def _load_metrics(path: str) -> Tuple[str, Dict[str, object]]:
    with open(path) as handle:
        payload = json.load(handle)
    name = payload.get("benchmark") or os.path.basename(path)
    return str(name), dict(payload.get("metrics", {}))


def gate_files(
    baseline_path: str,
    current_path: str,
    warn_fraction: float = WARN_FRACTION,
    fail_fraction: float = FAIL_FRACTION,
) -> List[GateFinding]:
    """Gate one ``BENCH_*.json`` pair."""
    bench, baseline = _load_metrics(baseline_path)
    _, current = _load_metrics(current_path)
    return gate_metrics(bench, baseline, current,
                        warn_fraction=warn_fraction, fail_fraction=fail_fraction)


def gate_dirs(
    baseline_dir: str,
    current_dir: str,
    names: Optional[Sequence[str]] = None,
    warn_fraction: float = WARN_FRACTION,
    fail_fraction: float = FAIL_FRACTION,
) -> List[GateFinding]:
    """Gate every ``BENCH_*.json`` present in both directories.

    ``names`` restricts gating to specific benchmarks (``kernel_scaling``
    matches ``BENCH_kernel_scaling.json``).  Files present on only one side
    are skipped — new benchmarks land without baselines.
    """
    def bench_files(directory: str) -> Dict[str, str]:
        out = {}
        for filename in sorted(os.listdir(directory)):
            if filename.startswith("BENCH_") and filename.endswith(".json"):
                out[filename[len("BENCH_"):-len(".json")]] = os.path.join(
                    directory, filename
                )
        return out

    baselines = bench_files(baseline_dir)
    currents = bench_files(current_dir)
    selected = set(baselines) & set(currents)
    if names:
        unknown = sorted(set(names) - (set(baselines) | set(currents)))
        if unknown:
            raise SystemExit(
                f"unknown benchmark(s) {', '.join(unknown)}; known: "
                f"{', '.join(sorted(set(baselines) | set(currents)))}"
            )
        selected &= set(names)
    findings: List[GateFinding] = []
    for name in sorted(selected):
        findings.extend(gate_files(baselines[name], currents[name],
                                   warn_fraction=warn_fraction,
                                   fail_fraction=fail_fraction))
    return findings


def summarize(findings: Sequence[GateFinding]) -> str:
    """Human-readable gate summary, worst findings first."""
    order = {"fail": 0, "warn": 1, "info": 2, "ok": 3}
    lines = [f"perf gate: {len(findings)} gated metric(s)"]
    for finding in sorted(findings, key=lambda f: (order[f.severity], f.bench, f.metric)):
        lines.append(f"  [{finding.severity:4s}] {finding.describe()}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.gate",
        description="Gate fresh BENCH_*.json metrics against committed baselines.",
    )
    parser.add_argument("--baseline-dir", required=True,
                        help="directory holding the baseline BENCH_*.json files")
    parser.add_argument("--current-dir", default=".",
                        help="directory holding the freshly produced BENCH_*.json")
    parser.add_argument("--names", nargs="*", default=None, metavar="BENCH",
                        help="benchmarks to gate (default: every common one)")
    parser.add_argument("--warn", type=float, default=WARN_FRACTION,
                        help="fractional regression that warns (default 0.15)")
    parser.add_argument("--fail", type=float, default=FAIL_FRACTION,
                        help="fractional regression that fails (default 0.40)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the findings as a JSON artifact")
    args = parser.parse_args(argv)

    findings = gate_dirs(args.baseline_dir, args.current_dir, names=args.names,
                         warn_fraction=args.warn, fail_fraction=args.fail)
    print(summarize(findings))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump([finding.__dict__ for finding in findings], handle,
                      indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 1 if any(f.severity == "fail" for f in findings) else 0


if __name__ == "__main__":
    sys.exit(main())
