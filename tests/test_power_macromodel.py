"""Tests for macromodels, the model library and the seed builder."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.netlist.components import Adder, Constant, LogicOp, Multiplier, Mux
from repro.netlist.fsm import FSMController
from repro.netlist.sequential import Accumulator, Memory, Register
from repro.power import (
    CB130M_TECHNOLOGY,
    LinearTransitionModel,
    LUTPowerModel,
    PowerModelLibrary,
    SeedModelBuilder,
    build_seed_library,
)


def make_adder_model(width=4, coeff=2.0, base=1.0):
    widths = {"a": width, "b": width, "y": width}
    coeffs = {p: [coeff] * width for p in widths}
    return LinearTransitionModel("adder", widths, coeffs, base_energy_fj=base)


def test_linear_model_counts_toggles():
    model = make_adder_model()
    prev = {"a": 0b0000, "b": 0b0000, "y": 0b0000}
    curr = {"a": 0b1111, "b": 0b0000, "y": 0b1111}
    # 8 toggling bits * 2.0 + base 1.0
    assert model.evaluate(prev, curr) == pytest.approx(17.0)
    assert model.evaluate(curr, curr) == pytest.approx(1.0)


def test_linear_model_width_mismatch_rejected():
    with pytest.raises(ValueError):
        LinearTransitionModel("adder", {"a": 4}, {"a": [1.0, 2.0]})


def test_flat_coefficients_canonical_order():
    model = make_adder_model(width=2)
    flat = model.flat_coefficients()
    assert [(p, b) for p, b, _ in flat] == [
        ("a", 0), ("a", 1), ("b", 0), ("b", 1), ("y", 0), ("y", 1)
    ]
    rebuilt = model.with_coefficients([v for _, _, v in flat])
    assert rebuilt.coefficients == model.coefficients
    with pytest.raises(ValueError):
        model.with_coefficients([1.0])


def test_model_scale_and_max_energy():
    model = make_adder_model(width=4, coeff=2.0, base=1.0)
    scaled = model.scale(0.5)
    assert scaled.base_energy_fj == pytest.approx(0.5)
    assert scaled.coefficients["a"][0] == pytest.approx(1.0)
    assert model.max_energy_fj() == pytest.approx(1.0 + 12 * 2.0)


def test_average_power_conversion():
    model = make_adder_model()
    assert model.average_power_mw(0.0, 0, 200.0) == 0.0
    # 100 fJ over 10 cycles at 200 MHz -> 10 fJ/cycle * 200e6 = 2e-6 W = 0.002 mW
    assert model.average_power_mw(100.0, 10, 200.0) == pytest.approx(0.002)


def test_lut_model_binning():
    widths = {"a": 4, "y": 4}
    table = [[1.0, 2.0], [3.0, 4.0]]
    model = LUTPowerModel("thing", widths, ["a"], ["y"], table)
    quiet = model.evaluate({"a": 0, "y": 0}, {"a": 0, "y": 0})
    busy = model.evaluate({"a": 0, "y": 0}, {"a": 0xF, "y": 0xF})
    assert quiet == 1.0
    assert busy == 4.0
    with pytest.raises(ValueError):
        LUTPowerModel("bad", widths, ["a"], ["y"], [[1.0], [2.0, 3.0]])


def test_seed_builder_covers_all_component_types():
    builder = SeedModelBuilder(CB130M_TECHNOLOGY)
    components = [
        Adder("a", 8),
        Multiplier("m", 8),
        Mux("x", 8, 4),
        LogicOp("l", "xor", 8),
        Register("r", 16),
        Accumulator("acc", 16),
        Memory("mem", 8, 64),
        FSMController("f", ["A", "B"], {"go": 1}, {"done": 1}),
    ]
    for component in components:
        model = builder.build(component)
        assert model.total_bits == component.monitored_bits()
        assert model.max_energy_fj() > 0


def test_seed_builder_constant_has_empty_model():
    model = SeedModelBuilder().build(Constant("c", 8, 3))
    assert model.total_bits == 0
    assert model.evaluate({}, {}) == 0.0


def test_seed_models_scale_sensibly():
    builder = SeedModelBuilder()
    add8 = builder.build(Adder("a8", 8))
    add16 = builder.build(Adder("a16", 16))
    mul8 = builder.build(Multiplier("m8", 8))
    # wider adder has a larger worst-case energy; multiplier beats adder
    assert add16.max_energy_fj() > add8.max_energy_fj()
    assert mul8.max_energy_fj() > add8.max_energy_fj()
    # register base term (clock power) is nonzero even with no data activity
    reg = builder.build(Register("r", 8))
    assert reg.evaluate({"d": 0, "q": 0}, {"d": 0, "q": 0}) > 0


def test_library_caching_and_sharing():
    library = build_seed_library()
    a1 = Adder("one", 8)
    a2 = Adder("two", 8)
    a3 = Adder("three", 16)
    m1 = library.lookup(a1)
    m2 = library.lookup(a2)
    m3 = library.lookup(a3)
    assert m1 is m2          # same shape -> shared model
    assert m3 is not m1      # different width -> different model
    assert library.misses == 2 and library.hits == 1
    assert len(library) == 2
    assert "adder" in library.summary()


def test_library_without_provider_raises():
    library = PowerModelLibrary(name="empty")
    with pytest.raises(KeyError, match="no power model"):
        library.lookup(Adder("a", 8))
    library.add(Adder("a", 8), make_adder_model(8))
    assert library.has(Adder("b", 8))


@given(
    st.integers(min_value=0, max_value=0xF),
    st.integers(min_value=0, max_value=0xF),
    st.integers(min_value=0, max_value=0xF),
)
def test_linear_model_energy_monotone_in_toggles(a_prev, a_curr, extra):
    """Toggling strictly more bits never decreases energy (non-negative coeffs)."""
    model = make_adder_model(width=4, coeff=1.5, base=0.0)
    prev = {"a": a_prev, "b": 0, "y": 0}
    curr = {"a": a_curr, "b": 0, "y": 0}
    more = {"a": a_curr, "b": extra, "y": 0}
    assert model.evaluate(prev, more) >= model.evaluate(prev, curr)


@given(st.integers(min_value=0, max_value=0xFF), st.integers(min_value=0, max_value=0xFF))
def test_linear_model_symmetric_in_direction(prev, curr):
    """E(prev->curr) == E(curr->prev): only the XOR matters."""
    widths = {"a": 8}
    model = LinearTransitionModel("wire", widths, {"a": [0.7] * 8}, 0.1)
    assert model.evaluate({"a": prev}, {"a": curr}) == pytest.approx(
        model.evaluate({"a": curr}, {"a": prev})
    )
