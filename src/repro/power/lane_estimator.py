"""Multi-stimulus RTL power estimation over :class:`BatchSimulator` lanes.

The ROADMAP's named next workload: multi-seed RTL power sweeps.  A Monte-Carlo
style sweep runs the *same* flat module under N independent stimulus seeds; the
scalar :class:`~repro.power.rtl_estimator.RTLPowerEstimator` would simulate the
design N times.  This estimator instead lowers the design once into lane form
(:mod:`repro.sim.batch`) and advances all N testbenches together — one settle
per cycle for every lane — evaluating each component's power macromodel with
one vectorized pass over ``(n_lanes,)`` port-value arrays per cycle
(:meth:`~repro.power.macromodel.PowerMacromodel.evaluate_lanes`).

Interactive testbenches drive their lane through a
:class:`~repro.sim.batch.LaneView`: stimulus is collected per lane and applied
as per-lane slot writes, output checks read single lane values, and memory
backdoor loads land in that lane's private state.  Lanes that finish early are
masked out of the energy accumulation (and stop being driven/checked), so each
lane's report is identical to what a scalar run of the same testbench would
produce — lane count changes speed, never results.

Spec-backed testbenches (:class:`~repro.stim.testbench.SpecTestbench` sharing
one :class:`~repro.stim.spec.StimulusSpec`) skip the per-lane LaneView drive
loop entirely: their stimulus compiles into chunked lane tensors
(:mod:`repro.stim.compile`) written straight into the value store, one NumPy
row per port per cycle — the same values the per-lane loop would produce,
minus its ``O(n_lanes)`` Python overhead per cycle.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.netlist.module import Module
from repro.power.library import PowerModelLibrary
from repro.power.macromodel import LinearTransitionModel
from repro.power.profile import (
    DEFAULT_WINDOW_TARGET,
    PowerProfile,
    ProfileConfig,
)
from repro.power.report import ComponentPower, PowerReport
from repro.power.rtl_estimator import RTLPowerEstimator
from repro.power.technology import CB130M_TECHNOLOGY, Technology
from repro.sim.batch import LIMB_BITS, BatchSimulator
from repro.sim.testbench import Testbench


class _MacromodelObserver:
    """Per-cycle macromodel observation, vectorized across components.

    The per-component observation loop (one dict build + one
    ``evaluate_lanes`` call per monitored component per cycle) dominated
    spec-driven sweeps at low lane counts.  This observer gathers every
    monitored port column **once** per cycle (one fancy index over the value
    store), XORs against the previous cycle's gather in one pass, and keeps
    only the per-port bit-unpack + matvec per component — in exactly the
    order :meth:`LinearTransitionModel.evaluate_lanes` uses, so energies stay
    bit-identical to the per-component path.  Models that are not plain
    :class:`LinearTransitionModel` instances (LUT models, subclasses) and
    object-dtype stores keep the generic per-component evaluation, fed from
    the same gathered rows.
    """

    def __init__(
        self,
        monitored,
        slot_of,
        store_is_object: bool,
        limbs_of=None,
    ) -> None:
        limbs_of = limbs_of or {}
        slots: List[int] = []
        slot_row: Dict[int, int] = {}

        def row_of(slot: int) -> int:
            if slot not in slot_row:
                slot_row[slot] = len(slots)
                slots.append(slot)
            return slot_row[slot]

        #: (component name, base energy, [(row, shifts, coeffs), ...])
        self._fast = []
        #: (component name, model, [(port, rows), ...], wide) — generic
        #: evaluation; multi-row ports are limb-store nets, assembled per
        #: cycle.  ``wide`` components feed *every* port as exact Python ints
        #: so :meth:`LinearTransitionModel.evaluate_lanes` takes its per-bit
        #: object path for all of them — the sequential coefficient
        #: accumulation order of the scalar ``evaluate``, keeping reports
        #: bit-identical to the scalar estimator (the int64 matvec path sums
        #: in a different float order).
        self._generic = []
        #: component names in monitored order — cycle totals sum in this
        #: order so the cycle-energy trace matches the scalar observer's
        self._order = []
        for component, model in monitored:
            binding = {}
            for p in list(component.input_ports) + list(component.output_ports):
                if p.net is None:
                    continue
                slot = slot_of[p.net]
                n_limbs = limbs_of.get(p.net, 1)
                binding[p.name] = tuple(row_of(slot + k) for k in range(n_limbs))
            wide = any(len(rows) > 1 for rows in binding.values())
            self._order.append(component.name)
            if type(model) is LinearTransitionModel and not store_is_object and not wide:
                entries = [
                    (binding[port][0], shifts, coeffs)
                    for port, shifts, coeffs in model._lane_tables()
                    if port in binding  # unbound ports observe as constant 0
                ]
                self._fast.append((component.name, model.base_energy_fj, entries))
            else:
                self._generic.append(
                    (component.name, model, sorted(binding.items()), wide)
                )
        self._rows = np.asarray(slots, dtype=np.intp)
        self._prev = None

    @staticmethod
    def _gather_port(gathered: np.ndarray, rows, as_object: bool = False) -> np.ndarray:
        """One port's per-lane values; limb-store ports assemble Python ints."""
        if len(rows) == 1:
            row = gathered[rows[0]]
            return row.astype(object) if as_object else row
        value = gathered[rows[0]].astype(object)
        for k in range(1, len(rows)):
            value = value | (gathered[rows[k]].astype(object) << (LIMB_BITS * k))
        return value

    def observe(
        self,
        v: np.ndarray,
        active_f: np.ndarray,
        energy_by_component: Dict[str, np.ndarray],
    ) -> np.ndarray:
        """Accumulate this cycle's per-component energies; returns the total."""
        n_lanes = v.shape[1]
        cur = v[self._rows]  # one (n_ports, n_lanes) gather (a copy)
        prev = self._prev if self._prev is not None else cur
        per_component: Dict[str, np.ndarray] = {}
        if self._fast:
            toggles = prev ^ cur  # one XOR for every monitored port
            for name, base, entries in self._fast:
                energies = np.full(n_lanes, base, dtype=np.float64)
                for row, shifts, coeffs in entries:
                    bits = (toggles[row][..., None] >> shifts) & 1
                    energies += bits @ coeffs
                energies *= active_f
                energy_by_component[name] += energies
                per_component[name] = energies
        for name, model, ports, wide in self._generic:
            current = {
                port: self._gather_port(cur, rows, wide) for port, rows in ports
            }
            previous = {
                port: self._gather_port(prev, rows, wide) for port, rows in ports
            }
            energies = model.evaluate_lanes(previous, current) * active_f
            energy_by_component[name] += energies
            per_component[name] = energies
        # cycle totals accumulate in monitored order, matching the scalar
        # observer's per-cycle sum bit for bit
        total = np.zeros(n_lanes, dtype=np.float64)
        for name in self._order:
            total += per_component[name]
        self._prev = cur
        return total


class BatchRTLPowerEstimator:
    """Lane-vectorized counterpart of :class:`RTLPowerEstimator`.

    ``estimate_all`` runs one testbench per lane and returns one
    :class:`PowerReport` per testbench, each equal (up to wall-clock fields)
    to the report a scalar estimator would produce for that testbench alone.
    Raises :class:`~repro.sim.batch.BatchCompilationError` or
    :class:`~repro.sim.batch.LaneStateError` when the module or a testbench
    cannot run on the lane path — callers fall back to per-seed scalar runs.
    """

    #: reports carry the scalar estimator's name: same algorithm, same results
    name = RTLPowerEstimator.name

    def __init__(
        self,
        module: Module,
        library: Optional[PowerModelLibrary] = None,
        technology: Technology = CB130M_TECHNOLOGY,
        kernel_backend: Optional[str] = None,
        kernel_threads: Optional[Union[int, str]] = None,
    ) -> None:
        # shares the monitored-component/model association (and the
        # hierarchical-module guard) with the scalar estimator
        self._scalar = RTLPowerEstimator(module, library=library, technology=technology)
        self.module = module
        self.technology = self._scalar.technology
        self.library = self._scalar.library
        self.monitored = self._scalar.monitored
        #: kernel backend requested for the lane simulator (None = default)
        self.kernel_backend = kernel_backend
        #: kernel worker count requested for the lane simulator (None = auto)
        self.kernel_threads = kernel_threads
        #: kernel backend actually in effect during the last estimate_all
        self.last_kernel_backend: Optional[str] = None
        #: backend decision string from the last estimate_all's simulator
        self.last_kernel_decision: Optional[str] = None
        #: worker count the last estimate_all's native kernel ran with
        self.last_kernel_threads: Optional[int] = None
        #: wall-clock phase breakdown of the last estimate_all —
        #: ``lane_build_s`` (simulator + program + kernel compilation),
        #: ``simulate_s`` (the drive/settle/observe loop) and
        #: ``macromodel_eval_s`` (time inside the observer, a slice of
        #: simulate_s); shared across lanes, surfaced through
        #: ``EstimateResult.metadata["phase_s"]``
        self.last_phase_s: Dict[str, float] = {}
        #: per-lane windowed profiles from the last profiled estimate_all,
        #: aligned with the returned report list (None when not profiling)
        self.last_profiles: Optional[List[PowerProfile]] = None

    # ------------------------------------------------------------------ API
    def estimate_all(
        self,
        testbenches: Sequence[Testbench],
        max_cycles: Optional[int] = None,
        keep_cycle_trace: bool = True,
        use_array_driver: Optional[bool] = None,
        profile: Optional[ProfileConfig] = None,
    ) -> List[PowerReport]:
        """Run every testbench in its own lane and report power per lane.

        ``use_array_driver`` controls the stimulus path for spec-backed
        testbenches: ``None`` (default) prefers the vectorized array driver
        whenever every testbench is a :class:`SpecTestbench` sharing one
        spec, ``False`` forces the per-lane LaneView drive loop (the
        benchmark baseline), ``True`` requires the array driver and raises
        :class:`ValueError` when the testbenches are not spec-backed.
        Results are identical either way.
        """
        n_lanes = len(testbenches)
        if n_lanes == 0:
            return []
        start = time.perf_counter()
        with obs.span("lanes.build", module=self.module.name, n_lanes=n_lanes):
            simulator = BatchSimulator(
                self.module, n_lanes, kernel_backend=self.kernel_backend,
                kernel_threads=self.kernel_threads,
            )
        build_s = time.perf_counter() - start
        self.last_kernel_backend = simulator.kernel_backend
        self.last_kernel_decision = simulator.kernel_decision
        self.last_kernel_threads = simulator.kernel_threads
        views = [simulator.lane_view(lane) for lane in range(n_lanes)]
        for testbench, view in zip(testbenches, views):
            testbench.bind(view)

        limits = [
            max_cycles if max_cycles is not None else tb.max_cycles
            for tb in testbenches
        ]
        driver = None
        if use_array_driver is not False:
            # the array path stops every lane at one uniform cycle, so it
            # also requires equal per-lane budgets (a caller can retarget a
            # testbench's max_cycles after construction)
            if len(set(limits)) == 1:
                driver = self._make_array_driver(testbenches, simulator)
            if use_array_driver is True and driver is None:
                raise ValueError(
                    "use_array_driver=True needs SpecTestbench instances "
                    "sharing one StimulusSpec and equal cycle budgets"
                )

        is_object = simulator.program.dtype is object
        # default window: the finest width yielding ~DEFAULT_WINDOW_TARGET
        # windows over the known cycle budget (per-cycle windows on a long
        # run would only coalesce away)
        known = [limit for limit in limits if limit is not None]
        default_window = (
            max(1, -(-max(known) // DEFAULT_WINDOW_TARGET))
            if len(known) == len(limits)
            else 1
        )
        collector = self._scalar._make_collector(
            profile, n_lanes=n_lanes, default_window=default_window
        )
        observer = _MacromodelObserver(
            self.monitored, simulator.program.slot_of, is_object,
            simulator.program.limbs_of,
        )

        input_keys = simulator._input_keys
        input_limbs = simulator._port_limbs
        v = simulator._v

        active = np.ones(n_lanes, dtype=bool)
        lane_cycles = [0] * n_lanes
        # one (n_components, n_lanes) matrix of running energies whose rows
        # back the per-component dict as views — the profile collector reads
        # window deltas straight off it at boundaries, so profiling adds no
        # per-cycle work to this loop
        energy_matrix = np.zeros(
            (len(self.monitored), n_lanes), dtype=np.float64
        )
        energy_by_component = {
            component.name: energy_matrix[i]
            for i, (component, _) in enumerate(self.monitored)
        }
        cycle_energy: List[np.ndarray] = []
        # running per-lane peak cycle energy — masked lanes observe exact
        # zeros, so the vectorized max never picks up post-finish cycles
        peak_energy = np.zeros(n_lanes, dtype=np.float64)

        #: spec-backed lanes all run the same cycle-determined workload (one
        #: spec, equal limits, no checks), so their stop cycle is computed
        #: once and the per-lane budget/check/finished loops are skipped
        uniform_stop: Optional[int] = None
        if driver is not None:
            uniform_stop = (
                driver.n_cycles
                if limits[0] is None
                else min(limits[0], driver.n_cycles)
            )

        # one span for the whole drive/settle/observe loop — never per cycle;
        # the observer's share is accumulated with two clock reads per cycle
        # against its NumPy-heavy gather/matvec body
        sim_span = obs.span(
            "lanes.simulate", module=self.module.name, n_lanes=n_lanes)
        macromodel_s = 0.0

        while active.any():
            cycle = simulator.cycle
            if uniform_stop is not None:
                if cycle >= uniform_stop:
                    for lane in np.flatnonzero(active):
                        lane_cycles[lane] = cycle
                    active[:] = False
                    break
            else:
                # per-lane cycle budget (mirrors the scalar run loop's limit
                # check)
                for lane in np.flatnonzero(active):
                    limit = limits[lane]
                    if limit is not None and cycle >= limit:
                        active[lane] = False
                        lane_cycles[lane] = cycle
                if not active.any():
                    break

            if driver is not None:
                # array driver: one vectorized row write per driven port
                if cycle < driver.n_cycles:
                    driver.apply(cycle)
            else:
                # drive: collect each active lane's stimulus into per-lane writes
                for lane in np.flatnonzero(active):
                    lane_stimulus = testbenches[lane].drive(cycle, views[lane])
                    if not lane_stimulus:
                        continue
                    for name, value in lane_stimulus.items():
                        try:
                            slot, width = input_keys[name]
                        except KeyError:
                            valid = ", ".join(sorted(input_keys)) or "<none>"
                            raise KeyError(
                                f"module {self.module.name!r} has no input port "
                                f"{name!r}; valid input ports: {valid}"
                            ) from None
                        masked = int(value) & ((1 << width) - 1)
                        n_limbs = input_limbs[name]
                        if n_limbs > 1:
                            for k in range(n_limbs):
                                v[slot + k, lane] = (masked >> (LIMB_BITS * k)) & (
                                    (1 << LIMB_BITS) - 1
                                )
                        else:
                            v[slot, lane] = masked if is_object else np.int64(masked)

            simulator.settle()

            # observe: one gather + XOR across all monitored ports, then one
            # bit-unpack + matvec per (component, port) — see _MacromodelObserver
            active_f = active.astype(np.float64)
            t_observe = time.perf_counter()
            total_this_cycle = observer.observe(v, active_f, energy_by_component)
            macromodel_s += time.perf_counter() - t_observe
            np.maximum(peak_energy, total_this_cycle, out=peak_energy)
            if keep_cycle_trace:
                cycle_energy.append(total_this_cycle)
            if collector is not None:
                collector.end_cycle_cumulative(energy_matrix)

            if uniform_stop is not None:
                simulator.clock_edge()
                simulator.cycle += 1
                if cycle + 1 >= uniform_stop:
                    for lane in range(n_lanes):
                        lane_cycles[lane] = cycle + 1
                    active[:] = False
                continue

            # check/finish each active lane, then take the shared clock edge
            finishing = []
            for lane in np.flatnonzero(active):
                testbenches[lane].check(cycle, views[lane])
                if testbenches[lane].finished(cycle, views[lane]):
                    finishing.append(lane)
                    lane_cycles[lane] = cycle + 1
            simulator.clock_edge()
            simulator.cycle += 1
            for lane in finishing:
                active[lane] = False

        simulator.settle()
        elapsed = time.perf_counter() - start
        sim_span.set(cycles=simulator.cycle,
                     macromodel_eval_s=round(macromodel_s, 6))
        sim_span.end()
        self.last_phase_s = {
            "lane_build_s": build_s,
            "simulate_s": elapsed - build_s,
            "macromodel_eval_s": macromodel_s,
        }
        trace = (
            np.stack(cycle_energy, axis=0)
            if cycle_energy
            else np.zeros((0, n_lanes), dtype=np.float64)
        )
        if collector is not None:
            collector.finish_cumulative(energy_matrix)
            self.last_profiles = collector.lane_profiles(
                design=self.module.name,
                estimator=self.name,
                clock_mhz=self.technology.clock_mhz,
                lane_cycles=lane_cycles,
                notes={"batch_lanes": n_lanes},
            )
        else:
            self.last_profiles = None
        driver_name = "array" if driver is not None else "lane-view"
        return [
            self._build_lane_report(
                lane, lane_cycles[lane], energy_by_component, trace,
                float(peak_energy[lane]), elapsed / n_lanes, n_lanes,
                keep_cycle_trace, driver_name,
            )
            for lane in range(n_lanes)
        ]

    # -------------------------------------------------------------- helpers
    @staticmethod
    def _make_array_driver(testbenches: Sequence[Testbench], simulator):
        """A :class:`~repro.stim.driver.BatchStimulusDriver` when every
        testbench is spec-backed.

        Returns ``None`` unless all testbenches are
        :class:`~repro.stim.testbench.SpecTestbench` instances sharing one
        :class:`~repro.stim.spec.StimulusSpec` (seeds may differ — each
        becomes one lane).  The driver compiles the very streams a scalar
        ``SpecTestbench`` run would pull, so switching drivers never changes
        results.  Subclasses are excluded — they may override ``check``/
        ``finished``, which the array-driven loop does not call — and take
        the per-lane LaneView path instead.
        """
        from repro.stim.driver import BatchStimulusDriver
        from repro.stim.testbench import SpecTestbench

        if not all(type(tb) is SpecTestbench for tb in testbenches):
            return None
        spec = testbenches[0].spec
        if any(tb.spec != spec for tb in testbenches[1:]):
            return None
        if any(
            port.is_input and port.net in simulator.program.limbs_of
            for port in simulator.module.ports.values()
        ):
            # limb-store input ports need per-limb writes; the array driver's
            # int64 stream rows cannot represent them, so drive per lane
            return None
        return BatchStimulusDriver(
            simulator, spec, seeds=[tb.seed for tb in testbenches]
        )
    def _build_lane_report(
        self,
        lane: int,
        cycles: int,
        energy_by_component: Dict[str, np.ndarray],
        trace: np.ndarray,
        peak_energy_fj: float,
        elapsed_s: float,
        n_lanes: int,
        keep_cycle_trace: bool,
        stimulus_driver: str = "lane-view",
    ) -> PowerReport:
        technology = self.technology
        components: Dict[str, ComponentPower] = {}
        total_energy = 0.0
        for component, _ in self.monitored:
            energy = float(energy_by_component[component.name][lane])
            total_energy += energy
            components[component.name] = ComponentPower(
                name=component.name,
                component_type=component.type_name,
                energy_fj=energy,
                average_power_mw=technology.energy_to_power_mw(
                    energy / cycles if cycles else 0.0
                ),
            )
        lane_trace = trace[:cycles, lane] if cycles else trace[:0, lane]
        return PowerReport(
            design=self.module.name,
            estimator=self.name,
            cycles=cycles,
            clock_mhz=technology.clock_mhz,
            total_energy_fj=total_energy,
            average_power_mw=technology.energy_to_power_mw(
                total_energy / cycles if cycles else 0.0
            ),
            peak_power_mw=(
                technology.energy_to_power_mw(peak_energy_fj) if cycles else 0.0
            ),
            components=components,
            cycle_energy_fj=[float(e) for e in lane_trace] if keep_cycle_trace else [],
            estimation_time_s=elapsed_s,
            notes={
                "n_monitored_components": len(self.monitored),
                "batch_lanes": n_lanes,
                "stimulus_driver": stimulus_driver,
            },
        )
