"""Functional-unit allocation.

Expensive, shareable units (ALUs and multipliers) are allocated from the
schedule's concurrency profile; cheap operations (bitwise logic, constant
shifts) get dedicated hardware, which is what practical behavioral-synthesis
tools do as well — sharing a shifter behind a multiplexer costs more than the
shifter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.hls.dfg import DataflowGraph
from repro.hls.scheduling import OP_CLASSES, Schedule

#: functional-unit classes that are shared between operations
SHARED_CLASSES = ("alu", "multiplier")


@dataclass
class Allocation:
    """Allocated functional units for one scheduled dataflow graph."""

    #: shared class -> list of unit instance names (e.g. ``alu -> [alu0, alu1]``)
    shared_units: Dict[str, List[str]] = field(default_factory=dict)
    #: shared class -> datapath width of the units of that class
    shared_widths: Dict[str, int] = field(default_factory=dict)
    #: node names that receive dedicated (unshared) hardware
    dedicated: List[str] = field(default_factory=list)

    @property
    def n_shared_units(self) -> int:
        return sum(len(units) for units in self.shared_units.values())

    def summary(self) -> str:
        parts = [
            f"{op_class}: {len(units)} x {self.shared_widths.get(op_class, 0)}-bit"
            for op_class, units in sorted(self.shared_units.items())
        ]
        parts.append(f"dedicated: {len(self.dedicated)}")
        return ", ".join(parts)


def allocate(graph: DataflowGraph, schedule: Schedule) -> Allocation:
    """Allocate functional units for a schedule."""
    allocation = Allocation()
    concurrency = schedule.max_concurrency()
    for op_class in SHARED_CLASSES:
        needed = concurrency.get(op_class, 0)
        if needed == 0:
            continue
        allocation.shared_units[op_class] = [f"{op_class}{i}" for i in range(needed)]
        width = 0
        for node in graph.operations:
            if OP_CLASSES[node.op] != op_class:
                continue
            width = max(width, node.width,
                        *(graph.nodes[op].width for op in node.operands))
        allocation.shared_widths[op_class] = max(1, width)
    for node in graph.operations:
        if OP_CLASSES[node.op] not in SHARED_CLASSES:
            allocation.dedicated.append(node.name)
    return allocation
