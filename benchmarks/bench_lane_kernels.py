"""Lane-kernel throughput: fused kernels vs the per-op NumPy batch path.

The batch backend's per-cycle cost is NumPy per-op dispatch — ~1 µs per
fused expression per cycle, independent of lane count.  The kernel subsystem
(:mod:`repro.sim.kernels`) collapses each module's settle and clock-edge
phases into one call each: a C per-lane loop compiled via cffi (``native``)
or a single fused exec-compiled NumPy pass (``numpy``).

This harness steps Fig. 3 designs for ``REPRO_BENCH_KERNEL_CYCLES`` cycles
at ``REPRO_BENCH_KERNEL_LANES`` lanes and measures simulated
lane-cycles/second for ``off`` (the per-op batch path), ``numpy`` and
``native``.  It also runs the multi-seed power estimator — spec-driven
stimulus tensors, vectorized macromodel observation — across all three
backends and asserts the reports are bit-identical.

Acceptance (at >= 1024 lanes, C compiler available): the native kernel
reaches >= 3x lane-cycles/sec over the per-op batch path on the measured
Fig. 3 designs, and the NumPy kernel is never slower than the batch path.
Writes ``benchmarks/results/lane_kernels.txt`` and the repo-root
``BENCH_lane_kernels.json`` trajectory artifact.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.designs.registry import build_flat, get_design
from repro.power import build_seed_library
from repro.power.lane_estimator import BatchRTLPowerEstimator
from repro.sim import BatchSimulator
from repro.sim.kernels import find_compiler
from repro.stim import SpecTestbench

from conftest import write_result

N_LANES = int(os.environ.get("REPRO_BENCH_KERNEL_LANES", "1024"))
N_CYCLES = int(os.environ.get("REPRO_BENCH_KERNEL_CYCLES", "256"))
DESIGNS = tuple(
    os.environ.get("REPRO_BENCH_KERNEL_DESIGNS", "Bubble_Sort,HVPeakF,DCT").split(",")
)
BACKENDS = ("off", "numpy", "native")

#: the acceptance floor only binds in the regime the issue names
ASSERT_SPEEDUP = N_LANES >= 1024 and find_compiler() is not None

#: design -> {backend: lane-cycles/s}
_ROWS = {}


def _lane_cycles_per_s(design_name: str, backend: str) -> float:
    module = build_flat(design_name)
    simulator = BatchSimulator(module, N_LANES, kernel_backend=backend)
    if backend == "native" and simulator.kernel_backend != "native":
        pytest.skip("no C compiler: native kernel unavailable")
    simulator.step(cycles=8)  # warm the kernel caches
    best = float("inf")
    for _ in range(3):
        simulator.reset()
        start = time.perf_counter()
        simulator.step(cycles=N_CYCLES)
        best = min(best, time.perf_counter() - start)
    return N_LANES * N_CYCLES / best


def _format_table() -> str:
    lines = [
        "Lane-kernel throughput — fused kernels vs per-op NumPy batch path",
        f"({N_LANES} lanes x {N_CYCLES} simulated cycles per backend)",
        "",
        f"{'design':16s} {'batch lc/s':>12s} {'numpy-kernel':>13s} {'native':>12s} "
        f"{'numpy x':>8s} {'native x':>9s}",
    ]
    for name, row in _ROWS.items():
        native = row.get("native")
        native_lcs = "{:,.0f}".format(native) if native else "n/a"
        native_speedup = "{:.2f}x".format(native / row["off"]) if native else "n/a"
        lines.append(
            f"{name:16s} {row['off']:>12,.0f} {row['numpy']:>13,.0f} "
            f"{native_lcs:>12s} "
            f"{row['numpy'] / row['off']:>7.2f}x "
            f"{native_speedup:>9s}"
        )
    return "\n".join(lines)


def _metrics() -> dict:
    metrics = {"n_lanes": N_LANES, "n_cycles": N_CYCLES}
    for name, row in _ROWS.items():
        metrics[f"lane_cycles_per_s_{name}_off"] = round(row["off"], 1)
        metrics[f"speedup_numpy_{name}"] = round(row["numpy"] / row["off"], 2)
        if row.get("native"):
            metrics[f"speedup_native_{name}"] = round(row["native"] / row["off"], 2)
    return metrics


@pytest.mark.parametrize("design_name", DESIGNS)
def test_lane_kernel_throughput(benchmark, design_name):
    row = {backend: 0.0 for backend in ("off", "numpy")}
    row["off"] = _lane_cycles_per_s(design_name, "off")
    row["numpy"] = _lane_cycles_per_s(design_name, "numpy")
    if find_compiler() is not None:
        row["native"] = _lane_cycles_per_s(design_name, "native")
    _ROWS[design_name] = row

    benchmark.pedantic(
        lambda: _lane_cycles_per_s(design_name, "numpy"), rounds=1, iterations=1
    )
    benchmark.extra_info.update({
        "lane_cycles_per_s_off": round(row["off"], 1),
        "speedup_numpy": round(row["numpy"] / row["off"], 2),
        **(
            {"speedup_native": round(row["native"] / row["off"], 2)}
            if row.get("native")
            else {}
        ),
    })
    # every design updates the trajectory artifact, so partial runs (CI
    # smoke, -k selections) still leave a complete summary behind
    write_result("lane_kernels.txt", _format_table(), metrics=_metrics(),
                 bench_name="lane_kernels")

    # the NumPy-fusion fallback must never lose to the per-op path (15%
    # tolerance: the two paths run near-identical NumPy work, so on a busy
    # 1-core runner the comparison is noise-dominated); the native floor is
    # the issue's acceptance bar
    assert row["numpy"] >= 0.85 * row["off"], (
        f"{design_name}: numpy kernel slower than the batch path "
        f"({row['numpy']:,.0f} vs {row['off']:,.0f} lane-cycles/s)"
    )
    if ASSERT_SPEEDUP and row.get("native"):
        assert row["native"] >= 3.0 * row["off"], (
            f"{design_name}: native kernel below the 3x floor "
            f"({row['native']:,.0f} vs {row['off']:,.0f} lane-cycles/s)"
        )


def test_lane_kernel_reports_bit_identical():
    """Multi-seed power estimation: identical reports on every backend."""
    library = build_seed_library()
    spec = get_design("HVPeakF").make_stimulus_spec().replace(n_cycles=64)
    per_backend = {}
    for backend in BACKENDS:
        estimator = BatchRTLPowerEstimator(
            build_flat("HVPeakF"), library=library, kernel_backend=backend
        )
        per_backend[backend] = estimator.estimate_all(
            [SpecTestbench(spec, seed=seed) for seed in range(8)],
            keep_cycle_trace=True,
        )
    reference = per_backend["off"]
    for backend in ("numpy", "native"):
        for expected, actual in zip(reference, per_backend[backend]):
            assert expected.total_energy_fj == actual.total_energy_fj
            assert expected.cycles == actual.cycles
            assert expected.cycle_energy_fj == actual.cycle_energy_fj
