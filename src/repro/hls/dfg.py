"""Dataflow graph intermediate representation for behavioral synthesis.

A :class:`DataflowGraph` describes one invocation of a pure dataflow kernel:
primary inputs, a DAG of scalar operations, and primary outputs.  Control flow
is out of scope (the control-dominated benchmark designs are written
structurally instead), which matches the kernels we generate with it (DCT
butterflies, FIR taps, quantizer arithmetic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.netlist.signals import from_signed, mask_value, to_signed

#: operations supported by the dataflow IR and their arity
OPERATIONS = {
    "input": 0,
    "const": 0,
    "add": 2,
    "sub": 2,
    "mul": 2,
    "and": 2,
    "or": 2,
    "xor": 2,
    "shl": 1,
    "shr": 1,
    "asr": 1,
    "neg": 1,
}


class DFGError(Exception):
    """Raised for malformed dataflow graphs."""


@dataclass
class DFGNode:
    """One operation (or input/constant) in the dataflow graph."""

    name: str
    op: str
    width: int
    operands: List[str] = field(default_factory=list)
    #: op-specific parameters: constant ``value``, shift ``amount``, ``signed``
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def is_source(self) -> bool:
        return self.op in ("input", "const")


class DataflowGraph:
    """A DAG of scalar operations with named primary inputs and outputs."""

    def __init__(self, name: str, signed: bool = True) -> None:
        self.name = name
        #: interpret values as two's complement in :meth:`evaluate`
        self.signed = signed
        self.nodes: Dict[str, DFGNode] = {}
        #: output name -> node name
        self.outputs: Dict[str, str] = {}
        self._counter = 0

    # ------------------------------------------------------------- building
    def _add(self, op: str, width: int, operands: Sequence[str] = (),
             name: Optional[str] = None, **params) -> str:
        if op not in OPERATIONS:
            raise DFGError(f"unknown operation {op!r}")
        arity = OPERATIONS[op]
        if arity and len(operands) != arity:
            raise DFGError(f"{op} expects {arity} operands, got {len(operands)}")
        node_name = name if name is not None else f"{op}_{self._counter}"
        self._counter += 1
        if node_name in self.nodes:
            raise DFGError(f"duplicate node name {node_name!r}")
        for operand in operands:
            if operand not in self.nodes:
                raise DFGError(f"operand {operand!r} of {node_name!r} is not defined yet")
        self.nodes[node_name] = DFGNode(node_name, op, width, list(operands), dict(params))
        return node_name

    def input(self, name: str, width: int) -> str:
        return self._add("input", width, name=name)

    def const(self, value: int, width: int, name: Optional[str] = None) -> str:
        return self._add("const", width, name=name, value=value)

    def add(self, a: str, b: str, width: Optional[int] = None, name: Optional[str] = None) -> str:
        return self._add("add", width or self._w(a, b), [a, b], name)

    def sub(self, a: str, b: str, width: Optional[int] = None, name: Optional[str] = None) -> str:
        return self._add("sub", width or self._w(a, b), [a, b], name)

    def mul(self, a: str, b: str, width: Optional[int] = None, name: Optional[str] = None) -> str:
        return self._add("mul", width or (self.nodes[a].width + self.nodes[b].width), [a, b], name)

    def logic(self, op: str, a: str, b: str, name: Optional[str] = None) -> str:
        return self._add(op, self._w(a, b), [a, b], name)

    def shl(self, a: str, amount: int, name: Optional[str] = None) -> str:
        return self._add("shl", self.nodes[a].width, [a], name, amount=amount)

    def shr(self, a: str, amount: int, name: Optional[str] = None) -> str:
        return self._add("shr", self.nodes[a].width, [a], name, amount=amount)

    def asr(self, a: str, amount: int, name: Optional[str] = None) -> str:
        return self._add("asr", self.nodes[a].width, [a], name, amount=amount)

    def neg(self, a: str, name: Optional[str] = None) -> str:
        return self._add("neg", self.nodes[a].width, [a], name)

    def output(self, name: str, node: str) -> None:
        if node not in self.nodes:
            raise DFGError(f"output {name!r} refers to unknown node {node!r}")
        if name in self.outputs:
            raise DFGError(f"duplicate output {name!r}")
        self.outputs[name] = node

    def _w(self, a: str, b: str) -> int:
        for operand in (a, b):
            if operand not in self.nodes:
                raise DFGError(f"operand {operand!r} is not defined yet")
        return max(self.nodes[a].width, self.nodes[b].width)

    # -------------------------------------------------------------- queries
    @property
    def operations(self) -> List[DFGNode]:
        """All non-source nodes (the ones that need scheduling and binding)."""
        return [n for n in self.nodes.values() if not n.is_source]

    @property
    def inputs(self) -> List[DFGNode]:
        return [n for n in self.nodes.values() if n.op == "input"]

    def consumers(self, node_name: str) -> List[DFGNode]:
        return [n for n in self.nodes.values() if node_name in n.operands]

    def validate(self) -> None:
        """Check the graph is a DAG with all operands defined and outputs bound."""
        if not self.outputs:
            raise DFGError(f"dataflow graph {self.name!r} has no outputs")
        # operands-defined is enforced at construction; check for cycles anyway
        state: Dict[str, int] = {}

        def visit(name: str) -> None:
            if state.get(name) == 1:
                raise DFGError(f"cycle detected through node {name!r}")
            if state.get(name) == 2:
                return
            state[name] = 1
            for operand in self.nodes[name].operands:
                visit(operand)
            state[name] = 2

        for name in self.nodes:
            visit(name)

    # ------------------------------------------------------------ reference
    def evaluate(self, input_values: Mapping[str, int]) -> Dict[str, int]:
        """Reference (software) evaluation of the kernel; used to verify HLS output."""
        values: Dict[str, int] = {}

        def value_of(name: str) -> int:
            if name in values:
                return values[name]
            node = self.nodes[name]
            if node.op == "input":
                result = mask_value(input_values.get(name, 0), node.width)
            elif node.op == "const":
                result = mask_value(int(node.params["value"]), node.width)
            else:
                operands = [value_of(op) for op in node.operands]
                result = self._apply(node, operands)
            values[name] = result
            return result

        return {out: value_of(node) for out, node in self.outputs.items()}

    def _apply(self, node: DFGNode, operands: List[int]) -> int:
        width = node.width
        signed = self.signed

        def sval(value: int, from_node: str) -> int:
            w = self.nodes[from_node].width
            return to_signed(value, w) if signed else value

        if node.op == "add":
            result = sval(operands[0], node.operands[0]) + sval(operands[1], node.operands[1])
        elif node.op == "sub":
            result = sval(operands[0], node.operands[0]) - sval(operands[1], node.operands[1])
        elif node.op == "mul":
            result = sval(operands[0], node.operands[0]) * sval(operands[1], node.operands[1])
        elif node.op == "and":
            result = operands[0] & operands[1]
        elif node.op == "or":
            result = operands[0] | operands[1]
        elif node.op == "xor":
            result = operands[0] ^ operands[1]
        elif node.op == "shl":
            result = operands[0] << int(node.params["amount"])
        elif node.op == "shr":
            result = operands[0] >> int(node.params["amount"])
        elif node.op == "asr":
            result = sval(operands[0], node.operands[0]) >> int(node.params["amount"])
        elif node.op == "neg":
            result = -sval(operands[0], node.operands[0])
        else:  # pragma: no cover - guarded at construction
            raise DFGError(f"unknown operation {node.op!r}")
        return from_signed(result, width) if signed else mask_value(result, width)
