"""Tests for the unified estimation API (repro.api).

Covers the declarative specs and their JSON round-trips, protocol conformance
of the three engine adapters (one spec shape in, comparable reports out),
auto-flattening, the multi-seed sweep runner (batch lanes, shard pool, disk
cache), and lane-count invariance of the batched RTL path.
"""

from __future__ import annotations

import json

import pytest

from repro.api import (
    EmulationEstimatorAdapter,
    EstimateResult,
    GateLevelEstimatorAdapter,
    PowerEstimator,
    RTLEstimatorAdapter,
    RunSpec,
    SweepSpec,
    estimate,
    estimator_for,
    sweep,
)
from repro.api.sweep import SweepResult

DESIGN = "binary_search"
CYCLES = 64


# ----------------------------------------------------------------- specs


def test_runspec_validation():
    with pytest.raises(ValueError, match="unknown engine"):
        RunSpec(design=DESIGN, engine="spice")
    with pytest.raises(ValueError, match="unknown backend"):
        RunSpec(design=DESIGN, backend="verilator")
    with pytest.raises(ValueError, match="only available for the 'rtl'"):
        RunSpec(design=DESIGN, engine="gate", backend="batch")
    with pytest.raises(ValueError, match="library"):
        RunSpec(design=DESIGN, library="characterized")


def test_runspec_json_roundtrip():
    spec = RunSpec(design="DCT", engine="emulation", seed=7, max_cycles=100,
                   coefficient_bits=10, workload_cycles=12345)
    again = RunSpec.from_json(spec.to_json())
    assert again == spec
    assert spec.replace(seed=8) != spec
    assert spec.replace(seed=8).design == "DCT"


def test_sweepspec_expansion_and_normalization():
    spec = SweepSpec(designs=["DCT", "HVPeakF"], engines=["rtl", "gate"],
                     seeds=[0, 1, 2])
    assert spec.designs == ("DCT", "HVPeakF")  # lists normalize to tuples
    specs = spec.run_specs()
    assert len(specs) == 2 * 2 * 3
    assert {s.engine for s in specs} == {"rtl", "gate"}
    with pytest.raises(ValueError, match="at least one design"):
        SweepSpec(designs=())


# ------------------------------------------------- protocol conformance


@pytest.fixture(scope="module")
def rtl_result():
    return estimate(RunSpec(design=DESIGN, engine="rtl", seed=3, max_cycles=CYCLES))


def test_adapters_satisfy_protocol():
    for engine, cls in (("rtl", RTLEstimatorAdapter),
                        ("gate", GateLevelEstimatorAdapter),
                        ("emulation", EmulationEstimatorAdapter)):
        adapter = estimator_for(engine)
        assert isinstance(adapter, cls)
        assert isinstance(adapter, PowerEstimator)
        assert adapter.engine == engine
    with pytest.raises(ValueError, match="unknown engine"):
        estimator_for("spice")


def test_all_engines_share_spec_semantics(rtl_result):
    """The same spec shape drives every engine to a comparable report."""
    results = {"rtl": rtl_result}
    for engine in ("gate", "emulation"):
        results[engine] = estimate(
            RunSpec(design=DESIGN, engine=engine, seed=3, max_cycles=CYCLES)
        )
    for engine, result in results.items():
        assert result.spec.design == DESIGN
        assert result.report.cycles == CYCLES
        assert result.report.average_power_mw > 0
        assert result.total_s > 0
        assert result.metadata["design"] == DESIGN
    # engines disagree only modestly on the same workload
    rtl_power = results["rtl"].average_power_mw
    emu_power = results["emulation"].average_power_mw
    assert abs(emu_power - rtl_power) / rtl_power < 0.2


def test_adapter_rejects_wrong_engine_spec():
    with pytest.raises(ValueError, match="implements"):
        RTLEstimatorAdapter().estimate(RunSpec(design=DESIGN, engine="gate"))


def test_accuracy_vs_rtl_attached():
    result = estimate(
        RunSpec(design=DESIGN, engine="emulation", seed=3, max_cycles=CYCLES,
                compare_to_rtl=True)
    )
    assert result.accuracy is not None
    assert abs(result.accuracy["relative_error"]) < 0.2
    assert result.accuracy["reference_power_mw"] > 0


def test_estimate_result_json_roundtrip():
    result = estimate(
        RunSpec(design=DESIGN, engine="emulation", seed=2, max_cycles=CYCLES,
                compare_to_rtl=True, keep_cycle_trace=True)
    )
    again = EstimateResult.from_json(result.to_json())
    assert again.spec == result.spec
    assert again.engine == result.engine
    assert again.backend == result.backend
    assert again.average_power_mw == pytest.approx(result.average_power_mw)
    assert again.report.cycle_energy_fj == pytest.approx(result.report.cycle_energy_fj)
    assert again.accuracy == result.accuracy
    assert again.metadata["device"] == result.metadata["device"]
    assert set(again.report.components) == set(result.report.components)
    # and the serialized form really is JSON
    payload = json.loads(result.to_json())
    assert payload["spec"]["design"] == DESIGN


# -------------------------------------------------------- auto-flatten


def _hierarchical_module():
    from repro.netlist import NetlistBuilder
    from repro.netlist.module import Module

    b = NetlistBuilder("leaf")
    a = b.input("a", 8)
    x = b.input("x", 8)
    b.output("y", b.add(a, x, name="adder"))
    leaf = b.build()
    parent = Module("parent")
    pa = parent.add_input("a", 8)
    px = parent.add_input("x", 8)
    py = parent.add_net("y", leaf.ports["y"].width)
    parent.add_instance("u0", leaf, {"a": pa, "x": px, "y": py})
    parent.add_output("y", py)
    return parent


def test_adapter_auto_flattens_hierarchical_modules():
    from repro.power import RTLPowerEstimator
    from repro.sim import RandomTestbench

    module = _hierarchical_module()
    # the legacy constructor refuses with actionable guidance...
    with pytest.raises(ValueError, match="repro.api"):
        RTLPowerEstimator(module)
    # ...while the adapter flattens automatically
    adapter = RTLEstimatorAdapter(
        module=module,
        testbench_factory=lambda seed: RandomTestbench(30, seed=seed or 0),
    )
    result = adapter.estimate(RunSpec(design="custom", engine="rtl", seed=1))
    assert result.report.cycles == 30
    assert result.report.average_power_mw > 0


def test_explicit_module_requires_testbench_factory():
    with pytest.raises(ValueError, match="testbench_factory"):
        RTLEstimatorAdapter(module=_hierarchical_module())


# --------------------------------------------- lane-count invariance


def test_batch_backend_matches_scalar_single_run(rtl_result):
    batched = estimate(
        RunSpec(design=DESIGN, engine="rtl", seed=3, max_cycles=CYCLES,
                backend="batch")
    )
    assert batched.backend == "batch[1]"
    assert batched.report.cycles == rtl_result.report.cycles
    assert batched.average_power_mw == pytest.approx(rtl_result.average_power_mw)
    assert batched.report.total_energy_fj == pytest.approx(
        rtl_result.report.total_energy_fj
    )


@pytest.mark.parametrize("design", ["binary_search", "Ispq"])
def test_multi_seed_batch_matches_scalar_per_seed(design):
    """Lane count never changes results: N lanes == N scalar runs."""
    seeds = [0, 1, 2]
    adapter = RTLEstimatorAdapter()
    specs = [RunSpec(design=design, engine="rtl", seed=s) for s in seeds]
    batched = adapter.estimate_many(specs)
    assert all(r.backend == f"batch[{len(seeds)}]" for r in batched)
    for spec, lane_result in zip(specs, batched):
        scalar = estimate(spec)
        assert lane_result.report.cycles == scalar.report.cycles
        assert lane_result.report.total_energy_fj == pytest.approx(
            scalar.report.total_energy_fj
        )
        for name, component in scalar.report.components.items():
            assert lane_result.report.components[name].energy_fj == pytest.approx(
                component.energy_fj
            )


def test_estimate_many_rejects_mixed_designs():
    adapter = RTLEstimatorAdapter()
    with pytest.raises(ValueError, match="sharing design"):
        adapter.estimate_many([
            RunSpec(design="binary_search", engine="rtl", seed=0),
            RunSpec(design="Ispq", engine="rtl", seed=0),
        ])


# ----------------------------------------------------------------- sweep


def test_sweep_multi_seed_rtl_uses_batch_lanes(tmp_path):
    spec = SweepSpec(designs=(DESIGN,), engines=("rtl",), seeds=(0, 1, 2, 3),
                     max_cycles=CYCLES, cache_dir=str(tmp_path))
    result = sweep(spec)
    assert len(result.results) == 4
    assert {r.backend for r in result.results} == {"batch[4]"}
    distribution = result.distribution(DESIGN, "rtl")
    assert distribution["n_seeds"] == 4
    assert distribution["min_mw"] <= distribution["mean_mw"] <= distribution["max_mw"]
    assert DESIGN in result.summary()

    # a repeat sweep is served from the on-disk cache with identical results
    again = sweep(spec)
    assert again.cache_hits == 4
    for first, second in zip(result.results, again.results):
        assert second.average_power_mw == pytest.approx(first.average_power_mw)

    # and the whole sweep result round-trips through JSON
    restored = SweepResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert [r.average_power_mw for r in restored.results] == pytest.approx(
        [r.average_power_mw for r in result.results]
    )


def test_sweep_sharded_matches_serial():
    spec_serial = SweepSpec(designs=(DESIGN,), engines=("rtl", "emulation"),
                            seeds=(0, 1), max_cycles=CYCLES, n_workers=1)
    spec_pool = SweepSpec(designs=(DESIGN,), engines=("rtl", "emulation"),
                          seeds=(0, 1), max_cycles=CYCLES, n_workers=2)
    serial = sweep(spec_serial)
    pooled = sweep(spec_pool)
    assert len(serial.results) == len(pooled.results) == 4
    for a, b in zip(serial.results, pooled.results):
        assert a.spec.engine == b.spec.engine and a.spec.seed == b.spec.seed
        assert b.average_power_mw == pytest.approx(a.average_power_mw)


# ------------------------------------------------------------- registry


def test_registry_get_and_seeded_testbenches():
    from repro.designs import registry

    entry = registry.get(DESIGN)
    assert entry is not None and entry.name == DESIGN
    tb_a = entry.make_testbench(seed=4)
    tb_b = entry.make_testbench(seed=4)
    tb_c = entry.make_testbench()  # default stimulus
    assert type(tb_a) is type(tb_c)
    assert tb_a is not tb_b
    with pytest.raises(KeyError, match="available"):
        registry.get("not_a_design")


# ----------------------------------------------------------------- CLI


def test_cli_run_writes_json_artifact(tmp_path, capsys):
    from repro.api.cli import main

    out = tmp_path / "run.json"
    code = main(["run", "--design", DESIGN, "--engine", "rtl",
                 "--max-cycles", str(CYCLES), "--json", str(out)])
    assert code == 0
    payload = json.loads(out.read_text())
    restored = EstimateResult.from_dict(payload)
    assert restored.spec.design == DESIGN
    assert restored.report.cycles == CYCLES
    assert DESIGN in capsys.readouterr().out


def test_cli_sweep_writes_json_artifact(tmp_path, capsys):
    from repro.api.cli import main

    out = tmp_path / "sweep.json"
    code = main(["sweep", "--designs", DESIGN, "--seeds", "0", "1",
                 "--max-cycles", str(CYCLES), "--json", str(out)])
    assert code == 0
    restored = SweepResult.from_dict(json.loads(out.read_text()))
    assert len(restored.results) == 2
    assert "mean (mW)" in capsys.readouterr().out
