"""Waveform capture (value-change recording) for selected nets."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.netlist.nets import Net
from repro.sim.engine import SimulationObserver, Simulator


@dataclass
class Waveform:
    """Value changes of one net: a list of ``(cycle, new_value)`` events."""

    net_name: str
    width: int
    changes: List[Tuple[int, int]] = field(default_factory=list)

    def value_at(self, cycle: int) -> int:
        """Value of the net at the given cycle (0 before the first change)."""
        value = 0
        for change_cycle, new_value in self.changes:
            if change_cycle > cycle:
                break
            value = new_value
        return value

    def toggle_cycles(self) -> List[int]:
        """Cycles at which the value changed (excluding the initial assignment)."""
        return [cycle for cycle, _ in self.changes[1:]]

    def __len__(self) -> int:
        return len(self.changes)


class WaveformRecorder(SimulationObserver):
    """Observer storing value changes for a set of nets (all nets by default).

    The recorded waveforms can be written out as a VCD file with
    :func:`repro.vcd.writer.write_vcd` and re-analyzed with the VCD activity
    counter — the classic software flow that power emulation accelerates.
    """

    def __init__(self, nets: Optional[Iterable[Net]] = None) -> None:
        self._selected = list(nets) if nets is not None else None
        self.waveforms: Dict[Net, Waveform] = {}
        self.last_cycle = -1

    def on_reset(self, simulator: Simulator) -> None:
        nets = self._selected if self._selected is not None else list(simulator.module.nets.values())
        self.waveforms = {net: Waveform(net.name, net.width) for net in nets}
        self.last_cycle = -1

    def on_cycle(self, simulator: Simulator, cycle: int) -> None:
        if not self.waveforms:
            self.on_reset(simulator)
        for net, waveform in self.waveforms.items():
            value = simulator.values[net]
            if not waveform.changes or waveform.changes[-1][1] != value:
                waveform.changes.append((cycle, value))
        self.last_cycle = cycle

    def by_name(self) -> Dict[str, Waveform]:
        return {net.name: wf for net, wf in self.waveforms.items()}
