"""Figure 3 (speedup series): speedup of power emulation over both RTL tools.

The paper reports speedups "ranging from 10X to over 500X", growing with
design size.  This harness derives the speedup series from the same per-design
study as the execution-time harness and checks the reproduced range and trend.
Writes ``benchmarks/results/fig3_speedup.txt``.
"""

from __future__ import annotations

from repro.designs.registry import FIGURE3_ORDER

from conftest import write_result


def test_fig3_speedup_series(benchmark, fig3_study):
    """Derive the speedup-vs-design series (benchmarked: completing the study)."""
    rows = benchmark.pedantic(fig3_study.ensure_all, rounds=1, iterations=1)

    speedups_nec = {row.design: row.speedup_nec for row in rows}
    speedups_pt = {row.design: row.speedup_powertheater for row in rows}
    benchmark.extra_info.update(
        {f"speedup_nec_{k}": round(v, 1) for k, v in speedups_nec.items()}
    )

    lines = [
        "Figure 3 reproduction — speedup of power emulation over RTL power estimation",
        "",
        f"{'design':12s} {'speedup over NEC-RTpower':>26s} {'speedup over PowerTheater':>27s}",
    ]
    for row in rows:
        lines.append(
            f"{row.design:12s} {row.speedup_nec:26.1f} {row.speedup_powertheater:27.1f}"
        )
    all_speedups = list(speedups_nec.values()) + list(speedups_pt.values())
    lines += [
        "",
        f"range: {min(all_speedups):.1f}x .. {max(all_speedups):.1f}x "
        "(paper: ~10x to over 500x)",
    ]
    write_result("fig3_speedup.txt", "\n".join(lines))

    # shape checks against the paper
    assert min(all_speedups) > 5, "even the smallest design should see a clear speedup"
    assert max(all_speedups) > 100, "the largest designs should see a >100x speedup"
    # the largest design (MPEG4) benefits more than the smallest (Bubble_Sort)
    assert speedups_nec["MPEG4"] > speedups_nec["Bubble_Sort"]
