"""Tests for the synthetic standard-cell library."""

from __future__ import annotations

import itertools

import pytest

from repro.gates.cells import CB013_LIBRARY, StandardCellLibrary


def test_library_has_expected_cells():
    for name in ["INV", "NAND2", "NOR2", "XOR2", "XNOR2", "MUX2", "XOR3", "MAJ3", "AOI21"]:
        assert name in CB013_LIBRARY


def test_cell_lookup_error_mentions_available():
    with pytest.raises(KeyError, match="NAND2"):
        CB013_LIBRARY.cell("NAND99")


def test_cell_truth_tables():
    lib = CB013_LIBRARY
    for a, b in itertools.product((0, 1), repeat=2):
        assert lib.cell("NAND2").evaluate([a, b]) == 1 - (a & b)
        assert lib.cell("NOR2").evaluate([a, b]) == 1 - (a | b)
        assert lib.cell("XOR2").evaluate([a, b]) == a ^ b
        assert lib.cell("XNOR2").evaluate([a, b]) == 1 - (a ^ b)
    for a, b, c in itertools.product((0, 1), repeat=3):
        assert lib.cell("XOR3").evaluate([a, b, c]) == (a ^ b ^ c)
        assert lib.cell("MAJ3").evaluate([a, b, c]) == (1 if a + b + c >= 2 else 0)
        assert lib.cell("MUX2").evaluate([a, b, c]) == (b if c else a)
        assert lib.cell("AOI21").evaluate([a, b, c]) == 1 - ((a & b) | c)
        assert lib.cell("OAI21").evaluate([a, b, c]) == 1 - ((a | b) & c)


def test_cell_input_count_checked():
    with pytest.raises(ValueError):
        CB013_LIBRARY.cell("NAND2").evaluate([1])


def test_cell_costs_are_ordered_sensibly():
    lib = CB013_LIBRARY
    # an XOR2 is bigger and more power hungry than an inverter
    assert lib.cell("XOR2").area_um2 > lib.cell("INV").area_um2
    assert lib.cell("XOR2").intrinsic_energy_fj > lib.cell("INV").intrinsic_energy_fj
    # all costs are positive
    for cell in lib.cells.values():
        assert cell.area_um2 > 0
        assert cell.input_cap_ff > 0
        assert cell.intrinsic_energy_fj > 0
        assert cell.leakage_nw > 0


def test_switching_energy_formula():
    lib = CB013_LIBRARY
    assert lib.switching_energy_fj(0.0) == 0.0
    assert lib.switching_energy_fj(10.0) == pytest.approx(0.5 * 10.0 * 1.2 * 1.2)


def test_custom_library_constants():
    lib = StandardCellLibrary("mini", {"INV": CB013_LIBRARY.cell("INV")}, vdd_v=1.0)
    assert lib.switching_energy_fj(2.0) == pytest.approx(1.0)
    assert "INV" in lib
    assert "NAND2" not in lib
