"""Benchmark-study infrastructure: sharding and result caching.

The paper's Figure 3 study — and most of this repo's benchmark harnesses —
computes one independent result per design: run the software RTL power
estimator and the full power-emulation flow, evaluate the calibrated tool and
platform time models, derive execution times and speedups.  That workload is
embarrassingly parallel across designs, so this package provides:

* :mod:`repro.bench.fig3` — the per-design Figure 3 study itself
  (:class:`~repro.bench.fig3.Fig3Study`), importable by benchmarks, examples
  and process-pool workers alike, plus a small CLI
  (``python -m repro.bench.fig3 --workers 4``),
* :mod:`repro.bench.shard` — a process-pool shard runner that computes one
  design per worker,
* :mod:`repro.bench.cache` — an on-disk JSON result cache keyed by
  ``(design, library, config, code fingerprint)``; the fingerprint hashes the
  ``repro`` package sources, so editing the code invalidates stale results
  while repeat runs of unchanged code are served from disk (~free).
"""

from repro.bench.cache import ResultCache, code_fingerprint
from repro.bench.fig3 import Fig3Row, Fig3Study, StudyConfig
from repro.bench.gate import GateFinding, gate_dirs, gate_files, gate_metrics
from repro.bench.shard import (
    ShardOutcome,
    run_payload_tasks,
    run_sharded,
    run_study_tasks,
)

__all__ = [
    "ResultCache",
    "code_fingerprint",
    "Fig3Row",
    "Fig3Study",
    "StudyConfig",
    "GateFinding",
    "gate_dirs",
    "gate_files",
    "gate_metrics",
    "ShardOutcome",
    "run_sharded",
    "run_payload_tasks",
    "run_study_tasks",
]
