"""Lane-vectorized characterization throughput: batch vs scalar reference.

The macromodel library is built by hammering each component's gate-level
implementation with hundreds of training vector pairs.  PR 1 made each
*cycle* cheap; this harness measures the next lever — executing all pairs as
NumPy lanes in one settle (``CharacterizationEngine(batch=True)``, the
default) against the scalar pair-at-a-time path (``batch=False``).

Both paths consume identical seed-stable stimuli and fit identical models
(see the lane-parity tests), so the comparison is pure execution speed.
Writes ``benchmarks/results/batch_characterization.txt``; the target from the
PR acceptance criteria is a >=5x aggregate training-pairs/sec speedup on the
standard component set.

``REPRO_BENCH_PAIRS`` overrides the per-component pair count (CI smoke runs
use a small value).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.netlist.components import Adder, Comparator, LogicOp, Multiplier, Mux, ShifterVar
from repro.power import CharacterizationEngine

from conftest import write_result

N_PAIRS = int(os.environ.get("REPRO_BENCH_PAIRS", "360"))

_COMPONENTS = [
    ("adder16", lambda: Adder("adder16", 16)),
    ("multiplier8", lambda: Multiplier("multiplier8", 8)),
    ("comparator16", lambda: Comparator("comparator16", 16)),
    ("mux4x12", lambda: Mux("mux4x12", 12, 4)),
    ("xor16", lambda: LogicOp("xor16", "xor", 16)),
    ("barrel16", lambda: ShifterVar("barrel16", 16, 4, "left")),
]


def _time_characterize(engine, factory, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        component = factory()
        start = time.perf_counter()
        engine.characterize(component)
        best = min(best, time.perf_counter() - start)
    return best


def test_batch_characterization_throughput(benchmark):
    batch_engine = CharacterizationEngine(n_pairs=N_PAIRS, seed=7, batch=True)
    scalar_engine = CharacterizationEngine(n_pairs=N_PAIRS, seed=7, batch=False)

    rows = {}
    total_scalar = 0.0
    total_batch = 0.0
    for label, factory in _COMPONENTS:
        # warm both paths once: techmap + gate-program caches, lstsq dispatch
        batch_engine.characterize(factory())
        scalar_engine.characterize(factory())
        # symmetric best-of-N so runner jitter cannot skew the ratio either way
        t_batch = _time_characterize(batch_engine, factory)
        t_scalar = _time_characterize(scalar_engine, factory)
        rows[label] = {
            "scalar_s": t_scalar,
            "batch_s": t_batch,
            "scalar_pairs_per_s": N_PAIRS / t_scalar,
            "batch_pairs_per_s": N_PAIRS / t_batch,
            "speedup": t_scalar / t_batch,
        }
        total_scalar += t_scalar
        total_batch += t_batch

    aggregate = total_scalar / total_batch

    # the benchmarked callable: one batched characterization sweep of the set
    def sweep():
        for _, factory in _COMPONENTS:
            batch_engine.characterize(factory())

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "n_pairs": N_PAIRS,
            "aggregate_speedup": round(aggregate, 2),
            **{f"speedup_{k}": round(v["speedup"], 2) for k, v in rows.items()},
        }
    )

    lines = [
        "Lane-vectorized batch characterization vs scalar pair-at-a-time path",
        f"({N_PAIRS} training pairs per component; identical stimuli and fits)",
        "",
        f"{'component':14s} {'scalar pairs/s':>15s} {'batch pairs/s':>15s} {'speedup':>9s}",
    ]
    for label, row in rows.items():
        lines.append(
            f"{label:14s} {row['scalar_pairs_per_s']:15,.0f} "
            f"{row['batch_pairs_per_s']:15,.0f} {row['speedup']:8.1f}x"
        )
    lines += ["", f"aggregate speedup (sum of scalar / sum of batch): {aggregate:.1f}x"]
    write_result("batch_characterization.txt", "\n".join(lines))

    # acceptance: >=5x training-pairs/sec on the standard component set
    # (asserted with margin so CI jitter cannot flake the job)
    assert aggregate > 3.0, f"batch characterization speedup collapsed: {aggregate:.1f}x"


@pytest.mark.parametrize("label,factory", _COMPONENTS[:2])
def test_batch_scalar_same_models(label, factory):
    """Spot parity here too: the bench compares equal work, not different fits."""
    import numpy as np

    batch = CharacterizationEngine(n_pairs=60, seed=11, batch=True).characterize(factory())
    scalar = CharacterizationEngine(n_pairs=60, seed=11, batch=False).characterize(factory())
    assert np.allclose(batch.reference_energies, scalar.reference_energies, rtol=1e-9)
    assert np.allclose(
        [v for _, _, v in batch.model.flat_coefficients()],
        [v for _, _, v in scalar.model.flat_coefficients()],
        rtol=1e-6,
        atol=1e-9,
    )
