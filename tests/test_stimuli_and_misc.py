"""Tests for stimulus generators, DCT reference math and miscellaneous helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.designs import stimuli
from repro.designs.hvpeakf import reference_filter
from repro.designs.registry import all_designs
from repro.power import build_seed_library
from repro.power.gate_estimator import GateLevelPowerEstimator
from repro.netlist import NetlistBuilder, flatten
from repro.sim import RandomTestbench, Simulator


# --------------------------------------------------------------- DCT reference
def test_dct_basis_matrix_shape_and_scale():
    basis = stimuli.dct_basis_matrix()
    assert len(basis) == 8 and all(len(row) == 8 for row in basis)
    # DC row is flat and equals SCALE * 1/(2*sqrt(2))
    expected_dc = round(stimuli.DCT_SCALE * 0.5 * math.sqrt(0.5))
    assert all(value == expected_dc for value in basis[0])
    # rows are (nearly) orthogonal under the integer scaling
    for u in range(8):
        for v in range(u + 1, 8):
            dot = sum(basis[u][x] * basis[v][x] for x in range(8))
            assert abs(dot) < stimuli.DCT_SCALE * stimuli.DCT_SCALE * 0.02


def test_reference_dct_of_constant_block_is_dc_only():
    block = [64] * 64
    coefficients = stimuli.reference_dct2d(block)
    assert coefficients[0] == pytest.approx(8 * 64, abs=2)
    assert all(abs(c) <= 1 for c in coefficients[1:])


def test_reference_idct_inverts_reference_dct():
    block = [((x * 7 + y * 13) % 200) - 100 for x in range(8) for y in range(8)]
    recovered = stimuli.reference_idct2d(stimuli.reference_dct2d(block))
    for a, b in zip(block, recovered):
        assert abs(a - b) <= 2


def test_random_block_generators_are_bounded_and_deterministic():
    a = stimuli.random_pixel_block(seed=5)
    b = stimuli.random_pixel_block(seed=5)
    assert a == b
    assert all(0 <= p <= 255 for p in a)
    coefficients = stimuli.random_coefficient_block(seed=5, magnitude=100)
    assert len(coefficients) == 64
    assert all(-100 <= c <= 100 for c in coefficients)
    zeros = sum(1 for c in coefficients[1:] if c == 0)
    assert zeros > 32  # sparse by construction


def test_signed_field_round_trip():
    for value in (-2048, -1, 0, 1, 2047):
        assert stimuli.field_to_signed(stimuli.signed_to_field(value, 12), 12) == value


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, 255), min_size=3, max_size=64))
def test_peaking_filter_reference_is_bounded(pixels):
    assert all(0 <= value <= 255 for value in reference_filter(pixels))


# ------------------------------------------------------------------- registry
def test_registry_scaled_workloads_are_simulatable():
    """Scaled testbenches must stay small enough for the pure-Python simulator."""
    for design in all_designs().values():
        assert design.scaled_cycles < 50_000, design.name
        assert design.nominal_cycles >= design.scaled_cycles


def test_registry_notes_describe_workloads():
    for design in all_designs().values():
        assert "nominal_workload" in design.notes
        assert "scaled_workload" in design.notes


# ---------------------------------------------------- gate-level estimator extra
def test_gate_estimator_on_design_with_memory_falls_back_to_macromodels():
    b = NetlistBuilder("memdp")
    a = b.input("a", 8)
    we = b.input("we", 1)
    rdata = b.memory("buf", 8, 32, we=we, addr=a, wdata=a, sync_read=True)
    b.output("y", b.pipe(b.add(rdata, a)))
    module = flatten(b.build())
    estimator = GateLevelPowerEstimator(module, library=build_seed_library())
    report = estimator.estimate(RandomTestbench(30, seed=4))
    assert report.notes["n_gate_mapped"] >= 1        # the adder
    assert report.notes["n_macromodelled"] >= 2      # memory + register
    assert report.total_energy_fj > 0


def test_simulator_hold_parameter_reduces_activity():
    b = NetlistBuilder("act")
    d = b.input("d", 16)
    b.output("q", b.pipe(d))
    module = flatten(b.build())
    from repro.sim import SignalTrace

    fast = Simulator(module)
    trace_fast = fast.add_observer(SignalTrace())
    fast.run(RandomTestbench(100, seed=1, hold=1))

    b2 = NetlistBuilder("act2")
    d2 = b2.input("d", 16)
    b2.output("q", b2.pipe(d2))
    slow = Simulator(flatten(b2.build()))
    trace_slow = slow.add_observer(SignalTrace())
    slow.run(RandomTestbench(100, seed=1, hold=10))

    assert trace_slow.total_toggles() < trace_fast.total_toggles()
