"""FPGA device capacity models (Xilinx Virtex-II class).

The paper maps power-model-enhanced designs onto a Virtex-II based PC
emulation platform and notes that FPGA capacity is the main practical
constraint of the approach.  These device models carry the resource totals
needed for capacity checking and a realistic achievable-clock ceiling; the
numbers follow the public Virtex-II family tables (4-input LUT + FF per logic
cell, 18 Kbit block RAMs, 18x18 multipliers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.core.synthesis import ResourceEstimate


@dataclass(frozen=True)
class FPGADevice:
    """Capacity model of one FPGA part."""

    name: str
    luts: int
    ffs: int
    bram_kbits: int
    multipliers_18x18: int
    max_clock_mhz: float
    #: configuration bitstream size, used by the download-time model
    bitstream_mbits: float

    def fits(self, resources: ResourceEstimate) -> bool:
        """True when the estimated resources fit on this part."""
        return (
            resources.luts <= self.luts
            and resources.ffs <= self.ffs
            and resources.bram_kbits <= self.bram_kbits
            and resources.multipliers <= self.multipliers_18x18
        )

    def utilization(self, resources: ResourceEstimate) -> Dict[str, float]:
        """Fractional utilization per resource class (can exceed 1.0)."""
        return {
            "luts": resources.luts / self.luts if self.luts else 0.0,
            "ffs": resources.ffs / self.ffs if self.ffs else 0.0,
            "bram_kbits": resources.bram_kbits / self.bram_kbits if self.bram_kbits else 0.0,
            "multipliers": (
                resources.multipliers / self.multipliers_18x18
                if self.multipliers_18x18
                else 0.0
            ),
        }


#: Virtex-II family (logic cells ~= LUT+FF pairs); sizes follow the datasheet.
VIRTEX2_DEVICES: Dict[str, FPGADevice] = {
    device.name: device
    for device in [
        FPGADevice("XC2V250", luts=3_072, ffs=3_072, bram_kbits=432,
                   multipliers_18x18=24, max_clock_mhz=120.0, bitstream_mbits=1.7),
        FPGADevice("XC2V500", luts=6_144, ffs=6_144, bram_kbits=576,
                   multipliers_18x18=32, max_clock_mhz=120.0, bitstream_mbits=2.8),
        FPGADevice("XC2V1000", luts=10_240, ffs=10_240, bram_kbits=720,
                   multipliers_18x18=40, max_clock_mhz=120.0, bitstream_mbits=4.1),
        FPGADevice("XC2V2000", luts=21_504, ffs=21_504, bram_kbits=1_008,
                   multipliers_18x18=56, max_clock_mhz=110.0, bitstream_mbits=8.3),
        FPGADevice("XC2V3000", luts=28_672, ffs=28_672, bram_kbits=1_728,
                   multipliers_18x18=96, max_clock_mhz=110.0, bitstream_mbits=10.5),
        FPGADevice("XC2V4000", luts=46_080, ffs=46_080, bram_kbits=2_160,
                   multipliers_18x18=120, max_clock_mhz=100.0, bitstream_mbits=15.7),
        FPGADevice("XC2V6000", luts=67_584, ffs=67_584, bram_kbits=2_592,
                   multipliers_18x18=144, max_clock_mhz=100.0, bitstream_mbits=21.9),
        FPGADevice("XC2V8000", luts=93_184, ffs=93_184, bram_kbits=3_024,
                   multipliers_18x18=168, max_clock_mhz=95.0, bitstream_mbits=29.1),
    ]
}


def smallest_fitting_device(
    resources: ResourceEstimate,
    devices: Optional[Iterable[FPGADevice]] = None,
) -> Optional[FPGADevice]:
    """The smallest (by LUT count) device that fits, or ``None`` if none does."""
    candidates = sorted(
        devices if devices is not None else VIRTEX2_DEVICES.values(),
        key=lambda d: d.luts,
    )
    for device in candidates:
        if device.fits(resources):
            return device
    return None
