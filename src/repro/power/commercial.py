"""Calibrated runtime models of the commercial RTL power estimation tools.

We obviously cannot run PowerTheater [1] or NEC's internal RTL power estimator
[2]; what Figure 3 needs from them is their *execution time* on each
benchmark.  Both tools implement the same algorithm as
:class:`repro.power.rtl_estimator.RTLPowerEstimator` (per-cycle macromodel
evaluation over every monitored signal), so their runtime is well described by

    t = setup + n_cycles * (per_cycle_overhead + monitored_bits * per_bit_cycle)

The default constants are anchored to the one absolute data point the paper
gives (the introduction's MPEG4 run: 43 minutes for PowerTheater and
55 minutes for the NEC tool on a 4-frame stimulus); the Fig. 3 harness
re-anchors them at run time against our MPEG4 design via
:func:`calibrate_tool`, so the reproduction tracks the paper's absolute scale
even though our MPEG4 model is smaller than the authors' 1.25M-transistor RTL.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CommercialToolModel:
    """Throughput model of a software RTL power estimation tool."""

    name: str
    #: fixed cost: reading the design, building macromodel bindings, reporting
    setup_time_s: float
    #: per simulated cycle overhead (simulator kernel, scheduling)
    per_cycle_s: float
    #: per monitored signal bit per cycle (macromodel evaluation + statistics)
    per_bit_cycle_s: float

    def estimate_runtime_s(self, n_cycles: int, monitored_bits: int) -> float:
        """Predicted wall-clock time to power-estimate ``n_cycles`` of stimulus."""
        if n_cycles < 0 or monitored_bits < 0:
            raise ValueError("cycle and bit counts must be non-negative")
        return (
            self.setup_time_s
            + n_cycles * self.per_cycle_s
            + n_cycles * monitored_bits * self.per_bit_cycle_s
        )

    def throughput_cycles_per_s(self, monitored_bits: int) -> float:
        """Steady-state simulation throughput for a design of the given size."""
        per_cycle = self.per_cycle_s + monitored_bits * self.per_bit_cycle_s
        return 1.0 / per_cycle if per_cycle > 0 else float("inf")


def calibrate_tool(
    tool: CommercialToolModel,
    n_cycles: int,
    monitored_bits: int,
    target_runtime_s: float,
) -> CommercialToolModel:
    """Return a copy of ``tool`` whose per-bit cost is scaled so that the given
    workload takes exactly ``target_runtime_s``.

    Used by the Fig. 3 harness to anchor both tools to the paper's MPEG4 data
    point (43 min / 55 min) using *our* MPEG4 design's size and nominal
    workload, preserving the paper's absolute time scale.
    """
    if n_cycles <= 0 or monitored_bits <= 0:
        raise ValueError("calibration workload must have positive cycles and bits")
    variable = target_runtime_s - tool.setup_time_s - n_cycles * tool.per_cycle_s
    if variable <= 0:
        raise ValueError(
            f"target runtime {target_runtime_s}s is smaller than the tool's fixed costs"
        )
    per_bit_cycle = variable / (n_cycles * monitored_bits)
    return replace(tool, per_bit_cycle_s=per_bit_cycle)


#: Sequence Design PowerTheater [1]: larger setup cost, slightly faster kernel.
POWERTHEATER = CommercialToolModel(
    name="PowerTheater",
    setup_time_s=25.0,
    per_cycle_s=8.0e-6,
    per_bit_cycle_s=6.5e-7,
)

#: NEC's internal RTL power estimator [2]: small setup, slower per-signal cost.
NEC_RTPOWER = CommercialToolModel(
    name="NEC-RTpower",
    setup_time_s=8.0,
    per_cycle_s=1.0e-5,
    per_bit_cycle_s=8.3e-7,
)
