"""Tests for the benchmark-study infrastructure (repro.bench).

Covers the on-disk result cache (keying, code fingerprinting, atomicity),
the library-form Figure 3 study, the process-pool shard runner's parity
with serial execution, and the perf-trajectory contract: every benchmark
harness that calls ``write_result`` must have produced a committed repo-root
``BENCH_*.json`` summary.
"""

from __future__ import annotations

import ast
import json
import os

import pytest

from repro.bench import (
    Fig3Row,
    Fig3Study,
    ResultCache,
    StudyConfig,
    code_fingerprint,
    run_sharded,
    run_study_tasks,
)

_CHEAP_DESIGNS = ["Bubble_Sort", "HVPeakF"]


# ----------------------------------------------------------------- cache


def test_result_cache_roundtrip(tmp_path):
    cache = ResultCache(str(tmp_path), namespace="t")
    key = cache.key(design="X", config={"bits": 12})
    assert cache.get(key) is None
    cache.put(key, {"value": 1.5})
    assert cache.get(key) == {"value": 1.5}
    assert cache.clear() == 1
    assert cache.get(key) is None


def test_result_cache_key_depends_on_parts_and_namespace(tmp_path):
    cache = ResultCache(str(tmp_path), namespace="a")
    other = ResultCache(str(tmp_path), namespace="b")
    assert cache.key(design="X") != cache.key(design="Y")
    assert cache.key(design="X", config={"bits": 12}) != cache.key(
        design="X", config={"bits": 8}
    )
    assert cache.key(design="X") != other.key(design="X")


def test_result_cache_quarantines_corruption(tmp_path):
    import os

    cache = ResultCache(str(tmp_path), namespace="t")
    key = cache.key(design="X")
    cache.put(key, {"ok": True})
    with open(cache._path(key), "w") as handle:
        handle.write("{not json")
    assert cache.get(key) is None
    # the corrupt entry was moved aside and counted, not left in place:
    # the next lookup is a clean miss, and a fresh put works again
    assert cache.corruption_count == 1
    assert not os.path.exists(cache._path(key))
    assert os.path.exists(cache._path(key) + ".corrupt")
    assert cache.get(key) is None
    assert cache.corruption_count == 1
    cache.put(key, {"ok": True})
    assert cache.get(key) == {"ok": True}


def _put_with_age(cache, age_rank, **parts):
    """Insert an entry whose mtime encodes its LRU age (0 = oldest)."""
    key = cache.key(**parts)
    cache.put(key, {"payload": "x" * 64, **parts})
    stamp = 1_000_000 + age_rank * 1000
    os.utime(cache._path(key), (stamp, stamp))
    return key


def test_result_cache_evicts_lru_to_byte_budget(tmp_path):
    unbounded = ResultCache(str(tmp_path), namespace="t")
    keys = [_put_with_age(unbounded, rank, n=rank) for rank in range(4)]
    entry_bytes = os.path.getsize(unbounded._path(keys[0]))

    # room for three entries (entry sizes vary by a byte or two, hence the
    # slack): the next put must evict exactly the two oldest
    cache = ResultCache(
        str(tmp_path), namespace="t", max_bytes=3 * entry_bytes + 16
    )
    new_key = _put_with_age(cache, 99, n=99)
    assert cache.eviction_count == 2
    assert cache.get(keys[0]) is None
    assert cache.get(keys[1]) is None
    assert cache.get(keys[2]) is not None
    assert cache.get(new_key) is not None


def test_result_cache_hit_refreshes_lru_position(tmp_path):
    cache = ResultCache(str(tmp_path), namespace="t")
    old = _put_with_age(cache, 0, n="old")
    young = _put_with_age(cache, 1, n="young")
    # a hit is a use: the old entry becomes the most recently used
    assert cache.get(old) is not None

    entry_bytes = os.path.getsize(cache._path(old))
    bounded = ResultCache(
        str(tmp_path), namespace="t", max_bytes=2 * entry_bytes
    )
    kept = bounded.key(n="kept")
    bounded.put(kept, {"payload": "x" * 64})
    # the *young-but-unused* entry was the LRU victim, not the touched one
    assert bounded.get(young) is None
    assert bounded.get(old) is not None


def test_result_cache_eviction_spares_just_written_entry(tmp_path):
    # a budget below one entry keeps only the newest write, never zero
    cache = ResultCache(str(tmp_path), namespace="t", max_bytes=1)
    first = _put_with_age(cache, 0, n=1)
    second = _put_with_age(cache, 1, n=2)
    assert cache.get(first) is None
    assert cache.get(second) is not None
    assert cache.stats()["entries"] == 1


def test_result_cache_eviction_spans_namespaces(tmp_path):
    other = ResultCache(str(tmp_path), namespace="other")
    foreign = _put_with_age(other, 0, n="foreign")
    entry_bytes = os.path.getsize(other._path(foreign))

    cache = ResultCache(str(tmp_path), namespace="t", max_bytes=entry_bytes)
    mine = _put_with_age(cache, 1, n="mine")
    # the byte budget is a directory property: the older entry of the other
    # namespace was evicted to make room
    assert other.get(foreign) is None
    assert cache.get(mine) is not None


def test_result_cache_stats_report_counters_and_sizes(tmp_path):
    cache = ResultCache(str(tmp_path), namespace="t", max_bytes=10_000_000)
    other = ResultCache(str(tmp_path), namespace="other")
    key = cache.key(n=1)
    assert cache.get(key) is None  # miss
    cache.put(key, {"n": 1})
    assert cache.get(key) == {"n": 1}  # hit
    other.put(other.key(n=2), {"n": 2})

    stats = cache.stats()
    assert stats["directory"] == str(tmp_path)
    assert stats["namespace"] == "t"
    assert stats["entries"] == 2
    assert stats["namespace_entries"] == 1
    assert stats["bytes"] > 0
    assert stats["max_bytes"] == 10_000_000
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["evictions"] == 0
    assert stats["corrupt_quarantined"] == 0


def test_cache_budget_resolves_from_environment(tmp_path, monkeypatch):
    from repro.bench.cache import resolve_max_bytes

    monkeypatch.delenv("REPRO_CACHE_MAX_MB", raising=False)
    assert resolve_max_bytes(None) is None
    assert resolve_max_bytes(123) == 123
    monkeypatch.setenv("REPRO_CACHE_MAX_MB", "0.5")
    assert resolve_max_bytes(None) == 512 * 1024
    assert ResultCache(str(tmp_path)).max_bytes == 512 * 1024
    assert resolve_max_bytes(77) == 77  # an explicit budget beats the env
    monkeypatch.setenv("REPRO_CACHE_MAX_MB", "lots")
    with pytest.raises(ValueError, match="REPRO_CACHE_MAX_MB"):
        resolve_max_bytes(None)


def test_result_cache_clear_scopes_by_namespace(tmp_path):
    mine = ResultCache(str(tmp_path), namespace="t")
    other = ResultCache(str(tmp_path), namespace="other")
    mine.put(mine.key(n=1), {"n": 1})
    mine.put(mine.key(n=2), {"n": 2})
    other.put(other.key(n=3), {"n": 3})
    assert mine.clear() == 2  # namespace-scoped by default
    assert other.get(other.key(n=3)) == {"n": 3}
    other.put(other.key(n=4), {"n": 4})
    assert mine.clear(all_namespaces=True) == 2


def test_cache_cli_stats_and_clear(tmp_path, capsys):
    from repro.api.cli import main

    cache = ResultCache(str(tmp_path), namespace="estimate")
    cache.put(cache.key(n=1), {"n": 1})
    other = ResultCache(str(tmp_path), namespace="job")
    other.put(other.key(n=2), {"n": 2})

    stats_json = tmp_path / "stats.json"
    assert main([
        "cache", "stats", "--cache-dir", str(tmp_path),
        "--json", str(stats_json),
    ]) == 0
    out = capsys.readouterr().out
    assert "entries           2 (1 in namespace 'estimate')" in out
    assert "unbounded" in out
    assert json.loads(stats_json.read_text())["entries"] == 2

    # scoped clear drops just the named namespace...
    assert main([
        "cache", "clear", "--cache-dir", str(tmp_path),
        "--namespace", "estimate",
    ]) == 0
    assert "cleared 1 cache entries (estimate)" in capsys.readouterr().out
    assert other.get(other.key(n=2)) == {"n": 2}
    # ...and the default clear sweeps every namespace
    assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
    assert "cleared 1 cache entries (all namespaces)" in capsys.readouterr().out
    assert ResultCache(str(tmp_path), namespace="job").stats()["entries"] == 0


def test_code_fingerprint_stable_and_hexadecimal():
    first = code_fingerprint()
    assert first == code_fingerprint()
    assert len(first) == 64
    int(first, 16)


# ------------------------------------------------------------ fig3 study


def test_fig3_study_disk_cache_hit(tmp_path):
    cache = ResultCache(str(tmp_path), namespace="fig3")
    cold = Fig3Study(cache=cache)
    row = cold.compute("Bubble_Sort")
    assert cold.cache_hits == {"Bubble_Sort": False}

    warm = Fig3Study(cache=cache)
    again = warm.compute("Bubble_Sort")
    assert warm.cache_hits == {"Bubble_Sort": True}
    assert again.time_emulation_s == row.time_emulation_s
    assert again.monitored_bits == row.monitored_bits
    assert again.nominal_cycles == row.nominal_cycles


def test_fig3_row_dict_roundtrip():
    study = Fig3Study()
    row = study.compute("HVPeakF")
    clone = Fig3Row.from_dict(json.loads(json.dumps(row.to_dict())))
    assert clone == row
    assert clone.speedup_nec == pytest.approx(row.speedup_nec)


def test_study_config_participates_in_cache_key(tmp_path):
    cache = ResultCache(str(tmp_path), namespace="fig3")
    study = Fig3Study(config=StudyConfig(coefficient_bits=12), cache=cache)
    study.compute("Bubble_Sort")
    other = Fig3Study(config=StudyConfig(coefficient_bits=8), cache=cache)
    other.compute("Bubble_Sort")
    assert other.cache_hits == {"Bubble_Sort": False}, "different config must miss"


# ------------------------------------------------------------- sharding


def test_run_sharded_serial_path():
    outcome = run_sharded(_CHEAP_DESIGNS, n_workers=1)
    assert sorted(outcome.rows) == sorted(_CHEAP_DESIGNS)
    assert outcome.n_workers == 1
    assert all(seconds >= 0.0 for seconds in outcome.task_times_s.values())


def test_run_sharded_pool_matches_serial(tmp_path):
    """One design per worker produces exactly the serial study's rows."""
    serial = run_sharded(_CHEAP_DESIGNS, n_workers=1)
    cache = ResultCache(str(tmp_path), namespace="fig3")
    pooled = run_sharded(_CHEAP_DESIGNS, n_workers=2, cache=cache)
    for name in _CHEAP_DESIGNS:
        ours, theirs = serial.rows[name], pooled.rows[name]
        assert ours.monitored_bits == theirs.monitored_bits
        assert ours.time_nec_s == theirs.time_nec_s
        assert ours.time_powertheater_s == theirs.time_powertheater_s
        assert ours.time_emulation_s == theirs.time_emulation_s
        assert ours.average_power_mw == theirs.average_power_mw
    # pooled rows were persisted for the next run
    config = StudyConfig()
    for name in _CHEAP_DESIGNS:
        key = cache.key(design=name, config=config.as_key())
        assert cache.get(key) is not None


def test_run_study_tasks_multi_config():
    tasks = [(name, StudyConfig(coefficient_bits=bits))
             for bits in (8, 12) for name in ["Bubble_Sort"]]
    outcome = run_study_tasks(tasks, n_workers=1)
    assert len(outcome.task_rows) == 2
    rows = list(outcome.task_rows.values())
    # coefficient width changes the instrumentation overhead, not the design
    assert rows[0].monitored_bits == rows[1].monitored_bits


# ------------------------------------------------------- perf trajectory

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_BENCH_DIR = os.path.join(_REPO_ROOT, "benchmarks")


def _expected_trajectory_names():
    """BENCH summary names every harness's write_result calls produce.

    Statically extracts the literal ``filename``/``bench_name`` arguments of
    each ``write_result(...)`` call in ``benchmarks/bench_*.py`` and applies
    conftest.write_result's naming rule (``bench_name`` wins, else the
    filename stem).
    """
    names = {}
    for entry in sorted(os.listdir(_BENCH_DIR)):
        if not (entry.startswith("bench_") and entry.endswith(".py")):
            continue
        path = os.path.join(_BENCH_DIR, entry)
        with open(path) as handle:
            tree = ast.parse(handle.read(), filename=path)
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "write_result"
            ):
                continue
            assert node.args and isinstance(node.args[0], ast.Constant), (
                f"{entry}: write_result must be called with a literal "
                f"filename so the perf trajectory is statically checkable"
            )
            bench_name = None
            for keyword in node.keywords:
                if keyword.arg == "bench_name":
                    assert isinstance(keyword.value, ast.Constant), (
                        f"{entry}: bench_name must be a literal"
                    )
                    bench_name = keyword.value.value
            filename = node.args[0].value
            name = bench_name or os.path.splitext(os.path.basename(filename))[0]
            names.setdefault(name, entry)
    return names


def test_every_write_result_harness_has_a_trajectory_entry():
    """Each harness's BENCH_<name>.json summary exists at the repo root.

    The repo-root summaries are the committed per-PR perf trajectory; a
    harness whose artifact is missing was never (re)run — exactly the gap
    that left the trajectory empty before this test existed.  Run the
    harness (``python -m pytest benchmarks/bench_<x>.py``) and commit the
    refreshed ``BENCH_*.json`` to fix a failure here.
    """
    names = _expected_trajectory_names()
    assert names, "no write_result callers found under benchmarks/"
    missing = []
    for name, harness in sorted(names.items()):
        path = os.path.join(_REPO_ROOT, f"BENCH_{name}.json")
        if not os.path.exists(path):
            missing.append(f"{harness} -> BENCH_{name}.json")
            continue
        with open(path) as handle:
            payload = json.load(handle)
        assert payload.get("benchmark") == name, path
        assert payload.get("table"), f"{path} has an empty table"
        assert "metrics" in payload and "python" in payload, path
    assert not missing, (
        "benchmark harnesses without a perf-trajectory entry: "
        + ", ".join(missing)
    )


def test_write_result_emits_trajectory_summary(tmp_path, monkeypatch):
    """write_result always produces the machine-readable BENCH summary."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "bench_conftest", os.path.join(_BENCH_DIR, "conftest.py")
    )
    conftest = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(conftest)
    monkeypatch.setattr(conftest, "RESULTS_DIR", str(tmp_path / "results"))
    monkeypatch.setattr(conftest, "REPO_ROOT", str(tmp_path))
    conftest.write_result("demo_table.txt", "a table", metrics={"x": 1.5})
    summary = tmp_path / "BENCH_demo_table.json"
    assert summary.exists()
    payload = json.loads(summary.read_text())
    assert payload["benchmark"] == "demo_table"
    assert payload["metrics"] == {"x": 1.5}
    assert payload["table"] == "a table"


# ----------------------------------------------------------------- perf gate


def _gate():
    from repro.bench import gate

    return gate


def test_gate_classify_metric_directions():
    gate = _gate()
    assert gate.classify_metric("lane_cycles_per_s_HVPeakF_1thr") == "higher"
    assert gate.classify_metric("speedup_4thr") == "higher"
    assert gate.classify_metric("characterize_wall_s") == "lower"
    assert gate.classify_metric("estimate_time_s") == "lower"
    # configuration values never gate
    assert gate.classify_metric("n_lanes") is None
    assert gate.classify_metric("host_cores") is None
    assert gate.classify_metric("threading_mode") is None


def test_gate_metrics_thresholds():
    gate = _gate()
    baseline = {"rate_per_s": 100.0, "wall_time_s": 10.0, "n_lanes": 64}
    improved = gate.gate_metrics("b", baseline, {"rate_per_s": 150.0, "wall_time_s": 8.0})
    assert {f.severity for f in improved} == {"ok"}
    warned = gate.gate_metrics("b", baseline, {"rate_per_s": 80.0, "wall_time_s": 10.0})
    assert {f.metric: f.severity for f in warned} == {
        "rate_per_s": "warn", "wall_time_s": "ok"
    }
    failed = gate.gate_metrics("b", baseline, {"rate_per_s": 50.0, "wall_time_s": 25.0})
    assert {f.metric: f.severity for f in failed} == {
        "rate_per_s": "fail", "wall_time_s": "fail"
    }


def test_gate_metrics_unpaired_is_informational():
    gate = _gate()
    findings = gate.gate_metrics("b", {"old_per_s": 5.0}, {"new_per_s": 7.0})
    assert {f.severity for f in findings} == {"info"}
    # info findings never fail a run
    assert all(f.severity != "fail" for f in findings)


def test_gate_metrics_rejects_bad_thresholds():
    gate = _gate()
    with pytest.raises(ValueError, match="warn"):
        gate.gate_metrics("b", {}, {}, warn_fraction=0.5, fail_fraction=0.2)


def _write_bench(directory, name, metrics):
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump({"benchmark": name, "metrics": metrics, "table": "t"}, handle)
    return path


def test_gate_dirs_and_cli_exit_codes(tmp_path):
    gate = _gate()
    base = str(tmp_path / "base")
    curr = str(tmp_path / "curr")
    _write_bench(base, "demo", {"rate_per_s": 100.0})
    _write_bench(curr, "demo", {"rate_per_s": 99.0})
    # only-in-one-side benchmarks are skipped, not errors
    _write_bench(base, "retired", {"rate_per_s": 1.0})
    findings = gate.gate_dirs(base, curr)
    assert [(f.bench, f.severity) for f in findings] == [("demo", "ok")]
    assert gate.main(["--baseline-dir", base, "--current-dir", curr]) == 0

    _write_bench(curr, "demo", {"rate_per_s": 10.0})
    report = str(tmp_path / "gate.json")
    assert gate.main(
        ["--baseline-dir", base, "--current-dir", curr, "--json", report]
    ) == 1
    payload = json.load(open(report))
    assert payload[0]["severity"] == "fail"

    with pytest.raises(SystemExit, match="unknown benchmark"):
        gate.gate_dirs(base, curr, names=["nope"])


def test_gate_self_check_against_committed_baselines():
    """The committed BENCH_*.json files gate cleanly against themselves."""
    gate = _gate()
    findings = gate.gate_dirs(_REPO_ROOT, _REPO_ROOT)
    assert findings, "no committed BENCH_*.json metrics were gateable"
    assert {f.severity for f in findings} == {"ok"}
