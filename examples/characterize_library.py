"""Characterize a power-macromodel library against gate-level implementations.

Reproduces the methodology of Section 2.1: for a set of RTL components, build
their gate-level implementations in the synthetic 0.13 µm cell library, apply
training vector pairs, measure reference transition energies, and fit the
cycle-accurate linear-regression macromodel ``E = base + sum_i c_i * T(x_i)``.
The script reports fit quality (R², NRMSE), compares the characterized models
with the analytic seed models, and shows the LUT-table macromodel alternative.

All training pairs execute as NumPy lanes through one batched gate-level
settle per vector set (the engine's default); pass ``batch=False`` to run the
scalar pair-at-a-time reference path — same stimuli, same fits, ~10x slower.

Run:  python examples/characterize_library.py
"""

from __future__ import annotations

import time

from repro.gates import TechnologyMapper
from repro.netlist.components import Adder, Comparator, LogicOp, Multiplier, Mux, ShifterVar
from repro.power import (
    CB130M_TECHNOLOGY,
    CharacterizationEngine,
    PowerModelLibrary,
    SeedModelBuilder,
)


def main() -> None:
    engine = CharacterizationEngine(n_pairs=150, seed=2005)
    seed_builder = SeedModelBuilder(CB130M_TECHNOLOGY)
    mapper = TechnologyMapper()

    components = [
        Adder("adder8", 8),
        Adder("adder16", 16),
        Multiplier("mult8", 8),
        Comparator("cmp16", 16),
        Mux("mux4x12", 12, 4),
        LogicOp("xor16", "xor", 16),
        ShifterVar("bshift16", 16, 4, "left"),
    ]

    library = PowerModelLibrary(CB130M_TECHNOLOGY, name="characterized")
    print(f"{'component':12s} {'gates':>6s} {'R^2':>7s} {'NRMSE':>7s} "
          f"{'mean E (fJ)':>12s} {'max E fit':>10s} {'max E seed':>10s}")
    for component in components:
        gates = mapper.map_component(component).n_gates
        result = engine.characterize(component)
        library.add(component, result.model)
        seed_model = seed_builder.build(component)
        print(
            f"{component.name:12s} {gates:6d} {result.metrics.r_squared:7.3f} "
            f"{result.metrics.nrmse:7.3f} {result.metrics.mean_energy_fj:12.1f} "
            f"{result.model.max_energy_fj():10.1f} {seed_model.max_energy_fj():10.1f}"
        )

    print()
    print("=== library summary ===")
    print(library.summary())

    print()
    print("=== LUT-table macromodel (ablation alternative) ===")
    lut = engine.characterize_lut(Adder("adder8_lut", 8), n_bins=4)
    quiet = lut.evaluate({"a": 0, "b": 0, "y": 0}, {"a": 0, "b": 0, "y": 0})
    busy = lut.evaluate({"a": 0, "b": 0, "y": 0}, {"a": 255, "b": 255, "y": 255})
    print(f"  8-bit adder LUT model: quiet bin {quiet:.1f} fJ, busy bin {busy:.1f} fJ")

    print()
    print("=== batch vs scalar characterization (same fits, different speed) ===")
    for batch in (True, False):
        timed = CharacterizationEngine(n_pairs=150, seed=2005, batch=batch)
        timed.characterize(Multiplier("mult8_timed", 8))  # warm the lowering caches
        start = time.perf_counter()
        timed.characterize(Multiplier("mult8_timed", 8))
        elapsed = time.perf_counter() - start
        label = "lane-vectorized" if batch else "scalar"
        print(f"  {label:15s} {150 / elapsed:10,.0f} training pairs/s")


if __name__ == "__main__":
    main()
