"""Levelized, compiled gate-level simulation.

Two-valued (0/1), cycle-less evaluation: each call settles the combinational
gate network for one input vector.  Consecutive vectors yield per-net toggle
information which the power calculator converts into switching energy — this
is the "gate-level implementation" reference used to characterize RTL power
macromodels, and the engine behind the slow gate-level estimation baseline.

Like the RTL simulator's compiled backend, the gate network is lowered once
per simulator into slot-indexed straight-line Python: every net gets a dense
integer slot (aliases share the slot of the net they resolve to, so alias
propagation disappears entirely) and each gate of the levelized order becomes
one inline boolean expression.  Standard cells are recognized by their
function object and fused; unknown cells fall back to a bound
``CellType.evaluate`` call, so custom libraries keep working.
"""

from __future__ import annotations

from collections import deque
from collections.abc import MutableMapping
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.gates import cells as _cells
from repro.gates.gate_netlist import GateInstance, GateNetlist, bit_net

#: expression template per standard-cell function; inputs are 0/1 so every
#: template already produces a 0/1 result (no trailing ``& 1`` needed)
_CELL_EXPRS: Dict[object, str] = {
    _cells._inv: "1 - {0}",
    _cells._buf: "{0}",
    _cells._nand2: "1 - ({0} & {1})",
    _cells._nand3: "1 - ({0} & {1} & {2})",
    _cells._nor2: "1 - ({0} | {1})",
    _cells._nor3: "1 - ({0} | {1} | {2})",
    _cells._and2: "{0} & {1}",
    _cells._and3: "{0} & {1} & {2}",
    _cells._or2: "{0} | {1}",
    _cells._or3: "{0} | {1} | {2}",
    _cells._xor2: "{0} ^ {1}",
    _cells._xnor2: "1 - ({0} ^ {1})",
    _cells._mux2: "{1} if {2} else {0}",
    _cells._aoi21: "1 - (({0} & {1}) | {2})",
    _cells._oai21: "1 - (({0} | {1}) & {2})",
    _cells._maj3: "1 if {0} + {1} + {2} >= 2 else 0",
    _cells._xor3: "{0} ^ {1} ^ {2}",
}


class GateValues(MutableMapping):
    """Live, name-keyed mapping view over the gate simulator's slot list.

    Reads and writes go straight through to the slots, so forcing a net with
    ``sim.values["w3"] = 1`` behaves exactly like it did when ``values`` was
    a plain dict.  Aliased names share one slot with their resolved source.
    """

    __slots__ = ("_slots", "_v")

    def __init__(self, slots: Dict[str, int], values: List[int]) -> None:
        self._slots = slots
        self._v = values

    def __getitem__(self, net: str) -> int:
        return self._v[self._slots[net]]

    def __setitem__(self, net: str, value: int) -> None:
        self._v[self._slots[net]] = value & 1

    def __delitem__(self, net: str) -> None:
        raise TypeError("net values cannot be deleted")

    def __iter__(self):
        return iter(self._slots)

    def __len__(self) -> int:
        return len(self._slots)


class GateLevelSimulator:
    """Evaluates a :class:`GateNetlist` one input vector at a time."""

    def __init__(self, netlist: GateNetlist) -> None:
        self.netlist = netlist
        self._order = self._levelize(netlist)
        self._resolved: Dict[str, str] = {}
        resolver = _build_alias_resolver(netlist)
        # Dense slots; an alias is the same wire as its resolved source, so it
        # shares the source's slot and needs no propagation pass.
        self._slots: Dict[str, int] = {}
        for net in netlist.all_nets():
            self._resolved[net] = resolver(net)
        for net in netlist.all_nets():
            source = self._resolved[net]
            if source not in self._slots:
                self._slots[source] = len(self._slots)
            self._slots.setdefault(net, self._slots[source])
        self._snap_pairs: List[Tuple[str, int]] = sorted(self._slots.items())
        self._const_pairs: List[Tuple[int, int]] = [
            (self._slots[net], value & 1) for net, value in netlist.constants.items()
        ]
        self._input_pairs: List[Tuple[str, int]] = [
            (net, self._slots[net]) for net in netlist.primary_inputs
        ]
        self._output_triples: List[Tuple[str, int, int]] = []
        for net in netlist.primary_outputs:
            port, index = _split_bit_net(net)
            self._output_triples.append((port, index, self._slots[self._resolved[net]]))
        self._fn = self._compile()
        self._n_slots = max(self._slots.values()) + 1 if self._slots else 0
        self._v: List[int] = [0] * self._n_slots
        #: live name-keyed view over the slots (reads and writes pass through)
        self.values = GateValues(self._slots, self._v)
        self.reset()

    # ---------------------------------------------------------------- setup
    @staticmethod
    def _levelize(netlist: GateNetlist) -> List[GateInstance]:
        producers: Dict[str, GateInstance] = {g.output: g for g in netlist.gates}
        resolved_alias = _build_alias_resolver(netlist)

        indegree: Dict[GateInstance, int] = {}
        successors: Dict[GateInstance, List[GateInstance]] = {g: [] for g in netlist.gates}
        for gate in netlist.gates:
            count = 0
            for net in gate.inputs:
                source = producers.get(resolved_alias(net))
                if source is not None and source is not gate:
                    successors[source].append(gate)
                    count += 1
            indegree[gate] = count

        order: List[GateInstance] = []
        queue = deque(g for g in netlist.gates if indegree[g] == 0)
        while queue:
            gate = queue.popleft()
            order.append(gate)
            for succ in successors[gate]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    queue.append(succ)
        if len(order) != len(netlist.gates):
            raise ValueError(
                f"gate netlist {netlist.name!r} contains a combinational cycle"
            )
        return order

    def _compile(self) -> Callable[[List[int]], None]:
        """Lower the levelized gate order into one straight-line function."""
        env: Dict[str, object] = {}
        lines = ["def _evaluate(v):"]
        body: List[str] = []
        for i, gate in enumerate(self._order):
            operands = [
                f"v[{self._slots[self._resolved.get(net, net)]}]" for net in gate.inputs
            ]
            out = self._slots[self._resolved.get(gate.output, gate.output)]
            template = _CELL_EXPRS.get(gate.cell.function)
            if template is not None and gate.cell.n_inputs == len(operands):
                body.append(f"v[{out}] = {template.format(*operands)}")
            else:
                name = f"_g{i}"
                env[name] = gate.cell.evaluate
                body.append(f"v[{out}] = {name}(({', '.join(operands)},))")
        if not body:
            body.append("pass")
        lines.extend("    " + line for line in body)
        namespace = dict(env)
        namespace["__builtins__"] = {}
        exec(compile("\n".join(lines), f"<gatesim:{self.netlist.name}>", "exec"), namespace)
        return namespace["_evaluate"]

    # ------------------------------------------------------------- controls
    def reset(self) -> None:
        """Zero every net (and re-apply constants)."""
        self._v[:] = [0] * self._n_slots
        for slot, value in self._const_pairs:
            self._v[slot] = value

    def resolve(self, net: str) -> str:
        """Follow alias chains to the net that actually carries the value."""
        resolved = self._resolved.get(net)
        if resolved is None:
            resolved = _build_alias_resolver(self.netlist)(net)
            self._resolved[net] = resolved
        return resolved

    # ------------------------------------------------------------ execution
    def _settle(self, input_bits: Mapping[str, int]) -> None:
        v = self._v
        for slot, value in self._const_pairs:
            v[slot] = value
        get = input_bits.get
        for net, slot in self._input_pairs:
            v[slot] = get(net, 0) & 1
        self._fn(v)

    def evaluate(self, input_bits: Mapping[str, int]) -> "GateValues":
        """Settle the network for one vector of primary-input bit values.

        Returns the live :class:`GateValues` view of the settled net values.
        """
        self._settle(input_bits)
        return self.values

    def evaluate_ports(self, port_values: Mapping[str, int],
                       port_widths: Mapping[str, int]) -> Dict[str, int]:
        """Bit-blast RTL port values, evaluate, and reassemble output ports."""
        input_bits: Dict[str, int] = {}
        for port, value in port_values.items():
            width = port_widths.get(port, 1)
            for i in range(width):
                input_bits[bit_net(port, i)] = (value >> i) & 1
        self._settle(input_bits)
        v = self._v
        outputs: Dict[str, int] = {}
        for port, index, slot in self._output_triples:
            outputs[port] = outputs.get(port, 0) | (v[slot] << index)
        return outputs

    def snapshot(self) -> Dict[str, int]:
        """Copy of the current net values (for toggle counting across vectors)."""
        v = self._v
        return {net: v[slot] for net, slot in self._snap_pairs}


def _build_alias_resolver(netlist: GateNetlist):
    cache: Dict[str, str] = {}

    def resolve(net: str) -> str:
        if net not in cache:
            current = net
            seen = set()
            while current in netlist.aliases:
                if current in seen:
                    raise ValueError(f"alias cycle through net {current!r}")
                seen.add(current)
                current = netlist.aliases[current]
            cache[net] = current
        return cache[net]

    return resolve


def _split_bit_net(net: str) -> tuple:
    if not net.endswith("]") or "[" not in net:
        return net, 0
    base, _, index = net.rpartition("[")
    return base, int(index[:-1])
