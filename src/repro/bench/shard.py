"""Process-pool sharding for per-design benchmark studies and sweeps.

The Figure 3 study — and the unified API's (design × engine × seed) sweeps —
are embarrassingly parallel: every task's result is computed independently.
:func:`run_payload_tasks` is the generic fan-out primitive: it runs one
picklable worker function per payload across a ``ProcessPoolExecutor``,
degrading to in-process serial execution for one worker or one task (same
results, no pool overhead).  :func:`run_sharded`/:func:`run_study_tasks`
specialize it for the Fig. 3 study, with each worker process holding a
lazily constructed study of its own — the seed library and tool calibration
are built once per worker, then amortized over every design that worker
computes.

Completed rows are written to the shared on-disk cache (when one is
configured) from the parent process, so a repeat run — even a serial one —
is served from disk.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.bench.cache import ResultCache
from repro.bench.fig3 import Fig3Row, StudyConfig

_P = TypeVar("_P")
_R = TypeVar("_R")


def _pool_context():
    """A fork-safe multiprocessing context for the shard pools.

    Plain ``fork`` children inherit the parent's native-kernel thread state
    (OpenMP teams / pthread pools) without the threads themselves; the first
    threaded kernel call in such a child deadlocks inside the threading
    runtime.  ``forkserver`` children descend from a clean helper process
    that never ran a kernel, so workers can use threaded kernels freely.
    """
    try:
        return multiprocessing.get_context("forkserver")
    except ValueError:  # pragma: no cover - platform without forkserver
        return multiprocessing.get_context("spawn")


def run_payload_tasks(
    payloads: Sequence[_P],
    worker: Callable[[_P], _R],
    n_workers: int = 2,
    on_result: Optional[Callable[[int, _R], None]] = None,
) -> List[_R]:
    """Fan ``worker(payload)`` out over a process pool, preserving order.

    ``worker`` must be a module-level (picklable) function and each payload
    picklable.  ``n_workers <= 1`` or a single payload runs in-process —
    results are identical either way.  ``on_result(index, result)`` fires in
    the parent as each result lands (completion order), so callers can
    persist completed work before later tasks finish.
    """
    results: List[Optional[_R]] = [None] * len(payloads)

    def collect(index: int, result: _R) -> None:
        results[index] = result
        if on_result is not None:
            on_result(index, result)

    if n_workers <= 1 or len(payloads) <= 1:
        for index, payload in enumerate(payloads):
            collect(index, worker(payload))
    else:
        with ProcessPoolExecutor(
            max_workers=n_workers, mp_context=_pool_context()
        ) as pool:
            futures = {
                pool.submit(worker, payload): index
                for index, payload in enumerate(payloads)
            }
            # collect in completion order so finished work is surfaced (and
            # persisted by on_result) even when an earlier task fails
            for future in as_completed(futures):
                collect(futures[future], future.result())
    return results  # type: ignore[return-value]

#: per-worker-process study, keyed by config (workers reuse calibration)
_WORKER_STUDIES: Dict[StudyConfig, object] = {}


def _compute_row_payload(design_name: str, config: StudyConfig) -> Dict[str, object]:
    """Worker entry point: one design's Fig3 row as a plain dict."""
    from repro.bench.fig3 import Fig3Study

    study = _WORKER_STUDIES.get(config)
    if study is None:
        study = Fig3Study(config=config)
        _WORKER_STUDIES[config] = study
    return study.compute(design_name).to_dict()


#: one shard task: a design name plus the study configuration to run it under
StudyTask = Tuple[str, StudyConfig]


@dataclass
class ShardOutcome:
    """Rows plus scheduling metadata from one sharded run."""

    #: (design, config) -> computed row
    task_rows: Dict[StudyTask, Fig3Row]
    n_workers: int
    wall_time_s: float
    #: per-task wall time as observed from the parent (queue + compute)
    task_times_s: Dict[StudyTask, float] = field(default_factory=dict)

    @property
    def rows(self) -> Dict[str, Fig3Row]:
        """Design-keyed view (single-config runs)."""
        return {design: row for (design, _), row in self.task_rows.items()}


def _study_worker(task: StudyTask) -> Dict[str, object]:
    return _compute_row_payload(*task)


def run_study_tasks(
    tasks: List[StudyTask],
    n_workers: int = 2,
    cache: Optional[ResultCache] = None,
) -> ShardOutcome:
    """Compute one study row per ``(design, config)`` task across a pool.

    ``n_workers <= 1`` (or a single task) degrades to in-process serial
    execution — same results, no pool overhead.  Rows are persisted to
    ``cache`` as they arrive.
    """
    start = time.perf_counter()
    task_rows: Dict[StudyTask, Fig3Row] = {}
    task_times: Dict[StudyTask, float] = {}
    last_collect = [start]

    def collect(index: int, payload: Dict[str, object]) -> None:
        task = tasks[index]
        task_rows[task] = row = Fig3Row.from_dict(payload)
        now = time.perf_counter()
        task_times[task] = now - last_collect[0]
        last_collect[0] = now
        # persist immediately so completed work survives a later task failing
        if cache is not None:
            design, config = task
            cache.put(cache.key(design=design, config=config.as_key()), row.to_dict())

    run_payload_tasks(tasks, _study_worker, n_workers=n_workers, on_result=collect)
    return ShardOutcome(
        task_rows=task_rows,
        n_workers=n_workers,
        wall_time_s=time.perf_counter() - start,
        task_times_s=task_times,
    )


def run_sharded(
    design_names: List[str],
    n_workers: int = 2,
    config: StudyConfig = StudyConfig(),
    cache: Optional[ResultCache] = None,
) -> ShardOutcome:
    """Single-config convenience wrapper over :func:`run_study_tasks`."""
    return run_study_tasks(
        [(name, config) for name in design_names], n_workers=n_workers, cache=cache
    )
