"""The resilient task runner: retries, timeouts, crash isolation, Ctrl-C.

:func:`run_resilient_tasks` is the fault-tolerant replacement for a bare
``ProcessPoolExecutor`` fan-out.  Each payload runs through a structured
*envelope* (:func:`_call_task`) that measures wall time inside the worker,
fires the ``worker`` fault-injection site, and converts exceptions into plain
dicts — so no exception ever crosses the scheduler boundary unannounced.
The scheduler on top adds:

* **Retries with deterministic backoff** — a failed attempt requeues with an
  exponential, seeded-jitter delay until ``max_retries`` is exhausted, then
  records a structured :class:`~repro.resilience.failures.TaskFailure`.
* **Timeouts** — a task past its wall-clock deadline cannot be cancelled in
  a ``ProcessPoolExecutor`` (the worker may be wedged in native code), so the
  pool is killed and respawned; the hung task counts a failed attempt and
  innocent in-flight tasks requeue without penalty.
* **Crash isolation** — an abruptly dying worker (segfault in a cached
  native ``.so``, OOM kill, ``os._exit``) breaks the whole pool.  The pool is
  respawned and every in-flight task becomes a *suspect* that re-runs alone
  (one task in flight) so blame is attributed exactly: a task whose isolated
  run crashes again is quarantined as failed (``max_pool_crashes`` strikes),
  while innocent victims complete and rejoin the parallel flow.
* **Graceful interruption** — Ctrl-C stops scheduling, kills the pool, and
  returns a partial :class:`~repro.resilience.failures.RunOutcome` with the
  unfinished tasks recorded as ``interrupted`` failures, so completed work is
  never discarded.

Submission is throttled to ``n_workers`` in-flight tasks (instead of dumping
the whole queue on the executor) so deadlines measure actual runtime and a
crash only implicates tasks that were really running.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
import traceback as _traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.resilience import faults
from repro.resilience.failures import RunOutcome, TaskFailure, TaskOutcome
from repro.resilience.policy import RetryPolicy

#: scheduler poll granularity while tasks are in flight
_TICK_S = 0.05

_TASK_RETRIES = obs.counter(
    "repro_task_retries_total",
    "Task attempts requeued after a failure or timeout")
_TASK_TIMEOUTS = obs.counter(
    "repro_task_timeouts_total",
    "Tasks whose attempt exceeded its wall-clock deadline")
_POOL_RESPAWNS = obs.counter(
    "repro_pool_respawns_total",
    "Worker-pool kills + respawns (crash or expired deadline)")
_TASK_FAILURES = obs.counter(
    "repro_task_failures_total", "Tasks finalized as failed, by kind")


def _pool_context():
    """A fork-safe multiprocessing context for worker pools.

    Plain ``fork`` children inherit the parent's native-kernel thread state
    (OpenMP teams / pthread pools) without the threads themselves; the first
    threaded kernel call in such a child deadlocks inside the threading
    runtime.  ``forkserver`` children descend from a clean helper process
    that never ran a kernel, so workers can use threaded kernels freely.
    """
    try:
        return multiprocessing.get_context("forkserver")
    except ValueError:  # pragma: no cover - platform without forkserver
        return multiprocessing.get_context("spawn")


# ------------------------------------------------------------- worker side


def _call_task(call: Tuple) -> Dict[str, object]:
    """Worker-side entry: run one attempt, returning a structured envelope.

    The envelope is a plain dict — ``{"ok": True, "value", "wall_s"}`` or
    ``{"ok": False, "error_type", "message", "traceback", "exception",
    "wall_s"}`` — so worker exceptions become data instead of pool poison.
    Wall time is measured *inside* the worker: it is pure compute time,
    unpolluted by queueing or result-collection order in the parent.

    Observability rides the same channel as the fault plan: ``obs_state``
    (captured in the parent) enables tracing in a pool worker, and the
    worker's spans plus counter *deltas* come back under the envelope's
    ``"obs"`` key for the parent to merge into one timeline/registry.
    In-process (serial) execution shares the parent's buffers directly —
    ``worker_begin`` returns ``None`` for the same pid and nothing is
    exported twice.
    """
    worker, payload, index, attempt, plan_text, obs_state, label = call
    faults.install_plan(plan_text)
    token = obs.worker_begin(obs_state)
    task_span = obs.span("task.run", task=index, attempt=attempt, label=label)
    start = time.perf_counter()
    try:
        faults.maybe_inject("worker", task=index, attempt=attempt)
        value = worker(payload)
    except Exception as error:
        task_span.set(error=type(error).__name__)
        task_span.end()
        envelope = {
            "ok": False,
            "error_type": type(error).__name__,
            "message": str(error),
            "traceback": _traceback.format_exc(),
            "exception": _if_picklable(error),
            "wall_s": time.perf_counter() - start,
        }
    else:
        task_span.end()
        envelope = {
            "ok": True, "value": value,
            "wall_s": time.perf_counter() - start,
        }
    export = obs.worker_export(token)
    if export is not None:
        envelope["obs"] = export
    return envelope


def _if_picklable(error: BaseException) -> Optional[BaseException]:
    try:
        pickle.dumps(error)
    except Exception:
        return None
    return error


# ---------------------------------------------------------- scheduler side


@dataclass
class _Entry:
    """One schedulable task attempt."""

    index: int
    attempt: int = 0
    #: pool crashes this task was in flight for
    strikes: int = 0
    #: earliest submission time (backoff)
    not_before: float = 0.0
    #: run alone (crash-suspect isolation)
    solo: bool = False


def run_resilient_tasks(
    payloads: Sequence,
    worker: Callable,
    n_workers: int = 1,
    policy: Optional[RetryPolicy] = None,
    labels: Optional[Sequence[str]] = None,
    timeouts: Optional[Sequence[Optional[float]]] = None,
    retries: Optional[Sequence[Optional[int]]] = None,
    on_outcome: Optional[Callable[[TaskOutcome], None]] = None,
    stop_on_failure: bool = False,
) -> RunOutcome:
    """Run ``worker(payload)`` per payload with retries/timeouts/isolation.

    ``worker`` must be a module-level (picklable) function and each payload
    picklable.  Results come back as a :class:`RunOutcome` whose per-task
    :class:`TaskOutcome` carries either the value or a structured
    :class:`TaskFailure` — exceptions never propagate unless the caller asks
    via :meth:`RunOutcome.raise_first_failure`.

    ``policy`` defaults to :meth:`RetryPolicy.from_env` (honouring
    ``REPRO_TASK_TIMEOUT_S`` / ``REPRO_TASK_RETRIES``).  ``timeouts`` /
    ``retries`` override the policy per task index (None entries fall back).
    ``on_outcome`` fires in the parent as each task *finalizes* (success or
    failure), in completion order.  ``stop_on_failure`` stops scheduling new
    work once any task exhausts its retries (queued tasks finalize as
    ``skipped``); in-flight tasks still complete and are collected.

    Serial execution (``n_workers <= 1`` or a single payload, and no
    timeout) runs in-process through the same envelope — identical results,
    no pool overhead.  Any task deadline forces a pool (even of one worker):
    a wedged in-process task could never be cancelled.
    """
    if policy is None:
        policy = RetryPolicy.from_env()
    n_tasks = len(payloads)
    label_of = _resolve_labels(labels, n_tasks)

    def timeout_of(index: int) -> Optional[float]:
        if timeouts is not None and timeouts[index] is not None:
            return timeouts[index]
        return policy.timeout_s

    def retries_of(index: int) -> int:
        if retries is not None and retries[index] is not None:
            return retries[index]
        return policy.max_retries

    if n_tasks == 0:
        return RunOutcome(outcomes=[])

    plan = faults.plan_text()
    any_timeout = any(timeout_of(i) is not None for i in range(n_tasks))
    use_pool = any_timeout or (n_workers > 1 and n_tasks > 1)
    run = _PoolRun if use_pool else _SerialRun
    return run(
        payloads=payloads,
        worker=worker,
        n_workers=max(1, n_workers),
        policy=policy,
        label_of=label_of,
        timeout_of=timeout_of,
        retries_of=retries_of,
        on_outcome=on_outcome,
        stop_on_failure=stop_on_failure,
        plan=plan,
    ).execute()


def _resolve_labels(labels, n_tasks) -> Callable[[int], str]:
    if labels is None:
        return lambda index: f"task[{index}]"
    resolved = list(labels)
    if len(resolved) != n_tasks:
        raise ValueError(
            f"labels length {len(resolved)} != payload count {n_tasks}"
        )
    return lambda index: resolved[index]


class _RunBase:
    """State shared by the serial and pool schedulers."""

    def __init__(self, payloads, worker, n_workers, policy, label_of,
                 timeout_of, retries_of, on_outcome, stop_on_failure, plan):
        self.payloads = payloads
        self.worker = worker
        self.n_workers = n_workers
        self.policy = policy
        self.label_of = label_of
        self.timeout_of = timeout_of
        self.retries_of = retries_of
        self.on_outcome = on_outcome
        self.stop_on_failure = stop_on_failure
        self.plan = plan
        self.outcomes: List[Optional[TaskOutcome]] = [None] * len(payloads)
        self.stopped = False
        self.respawns = 0

    # --------------------------------------------------------- finalization
    def _finalize(self, outcome: TaskOutcome) -> None:
        self.outcomes[outcome.index] = outcome
        if self.on_outcome is not None:
            self.on_outcome(outcome)
        if outcome.failure is not None and self.stop_on_failure:
            if outcome.failure.kind not in ("skipped", "interrupted"):
                self.stopped = True

    def _succeed(self, entry: _Entry, envelope: Dict[str, object]) -> None:
        self._finalize(TaskOutcome(
            index=entry.index,
            label=self.label_of(entry.index),
            ok=True,
            value=envelope["value"],
            attempts=entry.attempt + 1,
            wall_time_s=float(envelope.get("wall_s", 0.0)),
        ))

    def _fail(self, entry: _Entry, kind: str, error_type: str, message: str,
              traceback_text: str = "", wall_s: float = 0.0,
              exception: Optional[BaseException] = None) -> None:
        _TASK_FAILURES.inc(kind=kind)
        failure = TaskFailure(
            task_index=entry.index,
            label=self.label_of(entry.index),
            kind=kind,
            error_type=error_type,
            message=message,
            traceback=traceback_text,
            attempts=entry.attempt + 1,
            wall_time_s=wall_s,
            exception=exception,
        )
        self._finalize(TaskOutcome(
            index=entry.index,
            label=failure.label,
            ok=False,
            failure=failure,
            attempts=failure.attempts,
            wall_time_s=wall_s,
        ))

    def _fail_envelope(self, entry: _Entry, envelope: Dict[str, object]) -> None:
        self._fail(
            entry, "exception",
            envelope.get("error_type", "Exception"),
            envelope.get("message", ""),
            envelope.get("traceback", ""),
            float(envelope.get("wall_s", 0.0)),
            envelope.get("exception"),
        )

    def _skip(self, entry: _Entry) -> None:
        self._fail(entry, "skipped", "Skipped",
                   "not run: an earlier task failed with on_error='raise'")

    def _interrupt_unfinished(self) -> None:
        for index, outcome in enumerate(self.outcomes):
            if outcome is None:
                self._fail(_Entry(index=index), "interrupted",
                           "KeyboardInterrupt", "run interrupted before this "
                           "task completed")

    def _call(self, entry: _Entry) -> Tuple:
        return (self.worker, self.payloads[entry.index], entry.index,
                entry.attempt, self.plan, obs.capture_state(),
                self.label_of(entry.index))

    def _outcome(self, interrupted: bool = False) -> RunOutcome:
        return RunOutcome(
            outcomes=list(self.outcomes),  # type: ignore[arg-type]
            interrupted=interrupted,
            n_pool_respawns=self.respawns,
        )


class _SerialRun(_RunBase):
    """In-process execution: same envelope, retries and backoff, no pool."""

    def execute(self) -> RunOutcome:
        # _call_task installs the captured plan — in *this* process here, so
        # restore the prior installed state or a serial run would shadow
        # every later REPRO_FAULT_PLAN change (installed wins over env)
        previous_plan = faults.installed_plan()
        try:
            for index in range(len(self.payloads)):
                entry = _Entry(index=index)
                if self.stopped:
                    self._skip(entry)
                    continue
                while True:
                    envelope = _call_task(self._call(entry))
                    if envelope["ok"]:
                        self._succeed(entry, envelope)
                        break
                    if entry.attempt < self.retries_of(index):
                        _TASK_RETRIES.inc()
                        time.sleep(self.policy.backoff_s(index, entry.attempt))
                        entry.attempt += 1
                        continue
                    self._fail_envelope(entry, envelope)
                    break
        except KeyboardInterrupt:
            self._interrupt_unfinished()
            return self._outcome(interrupted=True)
        finally:
            faults.install_plan(previous_plan)
        return self._outcome()


class _PoolRun(_RunBase):
    """Process-pool execution with deadlines, respawn and crash isolation."""

    def execute(self) -> RunOutcome:
        self.queue: deque = deque(
            _Entry(index=index) for index in range(len(self.payloads))
        )
        #: crash suspects re-run one at a time for exact blame attribution
        self.solo_queue: deque = deque()
        self.inflight: Dict[object, Tuple[_Entry, float]] = {}
        self.pool = self._new_pool()
        try:
            while self.queue or self.solo_queue or self.inflight:
                if self.stopped:
                    for entry in list(self.queue) + list(self.solo_queue):
                        self._skip(entry)
                    self.queue.clear()
                    self.solo_queue.clear()
                    if not self.inflight:
                        break
                self._submit_ready()
                if not self.inflight:
                    self._sleep_until_ready()
                    continue
                self._collect()
            self.pool.shutdown(wait=True, cancel_futures=True)
        except KeyboardInterrupt:
            _kill_pool(self.pool)
            self._interrupt_unfinished()
            return self._outcome(interrupted=True)
        return self._outcome()

    # ------------------------------------------------------------ plumbing
    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.n_workers, mp_context=_pool_context()
        )

    def _respawn(self) -> None:
        _kill_pool(self.pool)
        self.pool = self._new_pool()
        self.respawns += 1
        _POOL_RESPAWNS.inc()

    def _submit(self, entry: _Entry) -> bool:
        try:
            future = self.pool.submit(_call_task, self._call(entry))
        except BrokenProcessPool:  # pragma: no cover - defensive
            self._crash_event(extra_victims=[entry])
            return False
        self.inflight[future] = (entry, time.perf_counter())
        return True

    def _submit_ready(self) -> None:
        now = time.perf_counter()
        if self.solo_queue:
            # isolation mode: exactly one suspect in flight, nothing else
            if not self.inflight:
                entry = self.solo_queue.popleft()
                self._submit(entry)
            return
        for _ in range(len(self.queue)):
            if len(self.inflight) >= self.n_workers:
                break
            entry = self.queue.popleft()
            if entry.not_before > now:
                self.queue.append(entry)
                continue
            if not self._submit(entry):
                break

    def _sleep_until_ready(self) -> None:
        pending = list(self.queue) + list(self.solo_queue)
        if not pending:
            return
        now = time.perf_counter()
        delay = min(entry.not_before for entry in pending) - now
        if delay > 0:
            time.sleep(min(delay, 0.25))

    # ---------------------------------------------------------- collection
    def _collect(self) -> None:
        done, _ = wait(set(self.inflight), timeout=_TICK_S,
                       return_when=FIRST_COMPLETED)
        crash_victims: List[_Entry] = []
        for future in done:
            entry, _submitted = self.inflight.pop(future)
            try:
                envelope = future.result()
            except BrokenProcessPool:
                crash_victims.append(entry)
                continue
            except Exception as error:
                # e.g. the result failed to unpickle — treat as task failure
                envelope = {
                    "ok": False,
                    "error_type": type(error).__name__,
                    "message": str(error),
                    "traceback": _traceback.format_exc(),
                    "exception": _if_picklable(error),
                    "wall_s": 0.0,
                }
            self._handle_envelope(entry, envelope)
        if crash_victims:
            self._crash_event(extra_victims=crash_victims)
            return
        self._expire_deadlines()

    def _handle_envelope(self, entry: _Entry, envelope: Dict[str, object]) -> None:
        # merge worker spans/counter deltas up front: retried attempts still
        # contribute their spans to the timeline (each tagged with attempt=)
        obs.merge_worker(envelope.pop("obs", None))
        if envelope["ok"]:
            self._succeed(entry, envelope)
            return
        if entry.attempt < self.retries_of(entry.index):
            _TASK_RETRIES.inc()
            delay = self.policy.backoff_s(entry.index, entry.attempt)
            entry.attempt += 1
            entry.not_before = time.perf_counter() + delay
            entry.solo = False
            self.queue.append(entry)
            return
        self._fail_envelope(entry, envelope)

    # -------------------------------------------------------------- crashes
    def _crash_event(self, extra_victims: List[_Entry]) -> None:
        """A worker died abruptly: respawn the pool, isolate the suspects."""
        victims = list(extra_victims)
        victims.extend(entry for entry, _ in self.inflight.values())
        self.inflight.clear()
        self._respawn()
        for entry in victims:
            entry.strikes += 1
            if entry.strikes >= self.policy.max_pool_crashes:
                self._fail(
                    entry, "crash", "WorkerCrashed",
                    f"worker process died abruptly {entry.strikes} times "
                    f"while running this task (segfault/OOM/_exit); "
                    f"quarantined",
                )
                continue
            # the crash consumed an attempt — advance the attempt number so
            # count-based fault rules (and attempt records) stay exact
            entry.attempt += 1
            entry.solo = True
            self.solo_queue.append(entry)

    # ------------------------------------------------------------- deadlines
    def _expire_deadlines(self) -> None:
        now = time.perf_counter()
        expired = []
        for future, (entry, submitted) in self.inflight.items():
            deadline = self.timeout_of(entry.index)
            if deadline is not None and now - submitted > deadline:
                expired.append(future)
        if not expired:
            return
        timed_out = [self.inflight.pop(future)[0] for future in expired]
        # the pool cannot cancel a running (possibly wedged) worker: kill the
        # whole pool and requeue the innocents at the front, unpenalized
        innocents = [entry for entry, _ in self.inflight.values()]
        self.inflight.clear()
        self._respawn()
        for entry in reversed(innocents):
            entry.not_before = 0.0
            self.queue.appendleft(entry)
        for entry in timed_out:
            deadline = self.timeout_of(entry.index)
            _TASK_TIMEOUTS.inc()
            if entry.attempt < self.retries_of(entry.index):
                _TASK_RETRIES.inc()
                delay = self.policy.backoff_s(entry.index, entry.attempt)
                entry.attempt += 1
                entry.not_before = time.perf_counter() + delay
                self.queue.append(entry)
                continue
            self._fail(
                entry, "timeout", "TaskTimeout",
                f"task exceeded its {deadline:g}s deadline on attempt "
                f"{entry.attempt + 1} and its worker was killed",
                wall_s=float(deadline or 0.0),
            )


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down even when a worker is wedged or already dead."""
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - defensive
        pass
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except Exception:  # pragma: no cover - defensive
            pass
