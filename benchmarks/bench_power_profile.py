"""Windowed power-profile overhead: telemetry must be ~free on the hot path.

The profiling contract of :mod:`repro.power.profile` on the batch lane
path is that the collector adds **no per-cycle Python work**: per-component
energies accumulate into one ``(n_components, n_lanes)`` matrix exactly as
before, and the collector commits snapshot deltas at window boundaries
only.  This harness verifies the contract empirically:

* runs a ``REPRO_PROFILE_BENCH_LANES``-lane
  :class:`~repro.power.lane_estimator.BatchRTLPowerEstimator` for
  ``REPRO_PROFILE_BENCH_CYCLES`` cycles with profiling off and with the
  default :class:`~repro.power.profile.ProfileConfig`, interleaved
  best-of-N, and **asserts the profiled run stays under 5% slower** — the
  issue's acceptance ceiling (a hard test failure, deliberately stronger
  than the ratio-based perf gate);
* checks the profiled run actually produced per-lane profiles whose sums
  match the reports (telemetry that dropped data would be "fast" for the
  wrong reason).

The perf gate tracks this bench through its throughput metric
(``lane_cycles_per_s_profiled``); the overhead percentage rides along as
context.  Writes ``benchmarks/results/power_profile.txt`` and the
repo-root ``BENCH_power_profile.json`` trajectory artifact.
"""

from __future__ import annotations

import os
import time

from conftest import write_result
from repro.designs import get_design
from repro.power import BatchRTLPowerEstimator, ProfileConfig

N_LANES = int(os.environ.get("REPRO_PROFILE_BENCH_LANES", "256"))
N_CYCLES = int(os.environ.get("REPRO_PROFILE_BENCH_CYCLES", "384"))
REPEATS = int(os.environ.get("REPRO_PROFILE_BENCH_REPEATS", "5"))
DESIGN = os.environ.get("REPRO_PROFILE_BENCH_DESIGN", "HVPeakF")

#: the issue's acceptance ceiling for profiled-vs-off hot-path delta
MAX_OVERHEAD_PCT = 5.0


def _estimate_seconds(estimator, entry, profile):
    testbenches = [entry.make_testbench(seed) for seed in range(N_LANES)]
    start = time.perf_counter()
    estimator.estimate_all(
        testbenches, max_cycles=N_CYCLES, keep_cycle_trace=False,
        profile=profile,
    )
    return time.perf_counter() - start


def test_power_profile_overhead_under_budget():
    entry = get_design(DESIGN)
    estimator = BatchRTLPowerEstimator(entry.build(), kernel_backend="numpy")
    # warm kernel + program caches
    estimator.estimate_all(
        [entry.make_testbench(0)], max_cycles=8, keep_cycle_trace=False
    )
    best = {"off": float("inf"), "profiled": float("inf")}
    # interleave the two configurations so drift (thermal, page cache)
    # hits both equally; keep each configuration's best time
    for _ in range(REPEATS):
        best["off"] = min(best["off"], _estimate_seconds(estimator, entry, None))
        best["profiled"] = min(
            best["profiled"],
            _estimate_seconds(estimator, entry, ProfileConfig()),
        )
    # the timed profiled run's telemetry is real: per-lane window sums
    # reproduce each lane's reported total energy
    profiles = estimator.last_profiles
    assert profiles is not None and len(profiles) == N_LANES
    reports = estimator.estimate_all(
        [entry.make_testbench(seed) for seed in range(N_LANES)],
        max_cycles=N_CYCLES, keep_cycle_trace=False, profile=ProfileConfig(),
    )
    for report, profile in zip(reports, estimator.last_profiles):
        assert abs(profile.total_energy_fj() - report.total_energy_fj) <= (
            1e-9 * max(report.total_energy_fj, 1.0)
        )

    overhead_pct = (best["profiled"] - best["off"]) / best["off"] * 100.0
    lane_cycles = N_LANES * N_CYCLES
    metrics = {
        "n_lanes": N_LANES,
        "n_cycles": N_CYCLES,
        "lane_cycles_per_s_off": round(lane_cycles / best["off"], 1),
        "lane_cycles_per_s_profiled": round(lane_cycles / best["profiled"], 1),
        "power_profile_overhead_pct": round(overhead_pct, 3),
        "n_windows": profiles[0].n_windows,
        "window_cycles": profiles[0].window_cycles,
    }
    table = "\n".join([
        "Power-profile overhead — profiling off vs default ProfileConfig",
        f"({DESIGN}: {N_LANES} lanes x {N_CYCLES} cycles, best of {REPEATS})",
        "",
        f"off       {best['off'] * 1e3:10.2f} ms "
        f"({metrics['lane_cycles_per_s_off']:,.0f} lane-cycles/s)",
        f"profiled  {best['profiled'] * 1e3:10.2f} ms "
        f"({metrics['lane_cycles_per_s_profiled']:,.0f} lane-cycles/s)",
        f"overhead  {overhead_pct:+10.3f} %   (budget < {MAX_OVERHEAD_PCT}%)",
        "",
        f"profile   {metrics['n_windows']} windows x "
        f"{metrics['window_cycles']} cycles per lane, "
        f"{len(profiles[0].component_names)} components",
    ])
    write_result("power_profile.txt", table, metrics=metrics)
    assert overhead_pct < MAX_OVERHEAD_PCT, (
        f"profiled batch hot path is {overhead_pct:.2f}% slower than "
        f"profiling off (budget {MAX_OVERHEAD_PCT}%)"
    )
