"""Typed expression IR for fused lane kernels.

The batch backend (:mod:`repro.sim.batch`) and the gate-level simulator
(:mod:`repro.gates.gatesim`) both lower their schedules into *lane programs*:
straight-line NumPy source over a ``(n_slots, n_lanes)`` value store, with
per-lane sequential state held in small holder objects bound into the exec
environment.  Those programs are shape-stable and branch-free, which makes
them a compiler IR in disguise — this module makes the IR explicit.

:func:`extract_ir` parses a generated lane program (source + exec
environment) into a small typed expression IR: slot reads/writes, per-lane
state rows, constant-table lookups, per-lane memory access, and a closed set
of arithmetic/logic/select operators, each typed ``i64`` or ``bool``.  The
two kernel code generators consume nothing but this IR:

* :mod:`repro.sim.kernels.numpy_backend` prints it back into one fused
  NumPy pass (settle + clock edge in a single compiled function), and
* :mod:`repro.sim.kernels.native` prints it as C — one per-lane loop of
  straight-line scalar code — compiled via ``cc`` and called through cffi.

Extraction is *conservative*: any statement outside the closed grammar (in
practice, the lane-scalar fallback calls emitted for subclassed or
user-defined components, and whole-module object-dtype fallbacks) raises
:class:`KernelUnsupportedError`, and the caller stays on the plain batch
path.  Kernels therefore never change results — a module either lowers
completely, or runs exactly as before.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: IR value types: 60-bit-safe int64 lanes, or 0/1 booleans from comparisons
I64 = "i64"
BOOL = "bool"


class KernelUnsupportedError(Exception):
    """The lane program contains constructs the kernel IR cannot express."""


# ---------------------------------------------------------------------------
# Expression nodes.
# ---------------------------------------------------------------------------


class Expr:
    """Base expression node; every node carries a value type ``ty``."""

    __slots__ = ()
    ty: str = I64


@dataclass(frozen=True)
class Const(Expr):
    value: int


@dataclass(frozen=True)
class Lane(Expr):
    """The lane index (``_lidx`` in lane programs, the loop variable in C)."""


@dataclass(frozen=True)
class SlotRef(Expr):
    """Read of one value-store row (``v[slot]``)."""

    slot: int


@dataclass(frozen=True)
class StateRef(Expr):
    """Read of one per-lane sequential-state row (``S[row]``)."""

    row: int


@dataclass(frozen=True)
class TempRef(Expr):
    """Read of an SSA-renamed local temporary."""

    name: str
    ty: str = I64


@dataclass(frozen=True)
class Table(Expr):
    """Constant-table lookup (ROM contents, FSM outputs, power coefficients)."""

    table: int
    index: Expr


@dataclass(frozen=True)
class MemRead(Expr):
    """Per-lane read of a ``(depth, n_lanes)`` memory column."""

    mem: int
    addr: Expr


@dataclass(frozen=True)
class Unary(Expr):
    op: str  # "inv" (bitwise/logical not) or "neg"
    a: Expr
    ty: str = I64


@dataclass(frozen=True)
class Bin(Expr):
    op: str  # + - * & | ^ << >> % < <= == != > >=
    a: Expr
    b: Expr
    ty: str = I64


@dataclass(frozen=True)
class Where(Expr):
    cond: Expr
    a: Expr
    b: Expr
    ty: str = I64


@dataclass(frozen=True)
class Min(Expr):
    a: Expr
    b: Expr


@dataclass(frozen=True)
class Abs(Expr):
    a: Expr


@dataclass(frozen=True)
class Popcount(Expr):
    a: Expr


@dataclass(frozen=True)
class Select(Expr):
    """N-way select by a clamped index (the lane form of a mux)."""

    index: Expr
    choices: Tuple[Expr, ...]


# ---------------------------------------------------------------------------
# Statement nodes.
# ---------------------------------------------------------------------------


class Stmt:
    __slots__ = ()


@dataclass(frozen=True)
class SetTemp(Stmt):
    name: str
    expr: Expr


@dataclass(frozen=True)
class SetSlot(Stmt):
    slot: int
    expr: Expr


@dataclass(frozen=True)
class SetState(Stmt):
    row: int
    expr: Expr


@dataclass(frozen=True)
class MemWrite(Stmt):
    """Masked per-lane memory store: ``if enable: mem[addr, lane] = data``."""

    mem: int
    addr: Expr
    data: Expr
    enable: Expr


# ---------------------------------------------------------------------------
# The extracted program.
# ---------------------------------------------------------------------------


@dataclass
class KernelIR:
    """One module's lane program as typed IR plus its runtime bindings.

    ``state_specs`` and ``mem_specs`` name per-lane state arrays as
    ``(holder, field, index)`` — resolved with ``getattr`` at bind time, so a
    kernel always sees the holder's *current* arrays.  ``tables`` are
    immutable int64 constant arrays safe to embed into generated code.
    """

    n_slots: int
    phases: Dict[str, List[Stmt]]
    state_specs: List[Tuple[object, str, Optional[int]]] = field(default_factory=list)
    mem_specs: List[Tuple[object, str]] = field(default_factory=list)
    mem_depths: List[int] = field(default_factory=list)
    tables: List[np.ndarray] = field(default_factory=list)
    #: numpy dtype of the value store ("int64" lane stores or "int8" gates)
    dtype: str = "int64"

    # ----------------------------------------------------------- bind helpers
    def state_arrays(self) -> List[np.ndarray]:
        """The live per-lane state rows, in ``StateRef.row`` order."""
        arrays = []
        for holder, name, index in self.state_specs:
            value = getattr(holder, name)
            arrays.append(value[index] if index is not None else value)
        return arrays

    def mem_arrays(self) -> List[np.ndarray]:
        """The live ``(depth, n_lanes)`` memory arrays, in ``mem`` id order."""
        return [getattr(holder, name) for holder, name in self.mem_specs]

    def n_statements(self) -> int:
        return sum(len(stmts) for stmts in self.phases.values())


# ---------------------------------------------------------------------------
# Extraction (generated lane source + exec environment -> KernelIR).
# ---------------------------------------------------------------------------

_BIN_OPS = {
    ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.BitAnd: "&",
    ast.BitOr: "|", ast.BitXor: "^", ast.LShift: "<<", ast.RShift: ">>",
    ast.Mod: "%",
}
_CMP_OPS = {
    ast.Lt: "<", ast.LtE: "<=", ast.Eq: "==", ast.NotEq: "!=",
    ast.Gt: ">", ast.GtE: ">=",
}


def _unsupported(reason: str) -> KernelUnsupportedError:
    return KernelUnsupportedError(f"lane program not kernelizable: {reason}")


class _Extractor:
    def __init__(self, env: Dict[str, object], n_slots: int, dtype: str) -> None:
        self.env = env
        self.ir = KernelIR(n_slots=n_slots, phases={}, dtype=dtype)
        self._state_ids: Dict[Tuple[int, str, Optional[int]], int] = {}
        self._mem_ids: Dict[Tuple[int, str], int] = {}
        self._table_ids: Dict[int, int] = {}
        #: current SSA name per source-level temp (reset per function)
        self._temps: Dict[str, TempRef] = {}
        self._n_versions = 0

    # ------------------------------------------------------------- registries
    def _state_row(self, holder: object, name: str, index: Optional[int]) -> int:
        key = (id(holder), name, index)
        row = self._state_ids.get(key)
        if row is None:
            value = getattr(holder, name)
            array = value[index] if index is not None else value
            if not (isinstance(array, np.ndarray) and array.ndim == 1):
                raise _unsupported(f"state field {name!r} is not a lane row")
            row = len(self.ir.state_specs)
            self._state_ids[key] = row
            self.ir.state_specs.append((holder, name, index))
        return row

    def _mem_id(self, holder: object, name: str) -> int:
        key = (id(holder), name)
        mem = self._mem_ids.get(key)
        if mem is None:
            array = getattr(holder, name)
            if not (isinstance(array, np.ndarray) and array.ndim == 2):
                raise _unsupported(f"memory field {name!r} is not (depth, lanes)")
            mem = len(self.ir.mem_specs)
            self._mem_ids[key] = mem
            self.ir.mem_specs.append((holder, name))
            self.ir.mem_depths.append(int(array.shape[0]))
        return mem

    def _table_id(self, array: np.ndarray) -> int:
        table = self._table_ids.get(id(array))
        if table is None:
            table = len(self.ir.tables)
            self._table_ids[id(array)] = table
            self.ir.tables.append(np.ascontiguousarray(array, dtype=np.int64))
        return table

    def _holder_field(self, node: ast.Attribute):
        """Resolve ``_sK.field`` to (holder, field, live value) or raise."""
        if not isinstance(node.value, ast.Name):
            raise _unsupported(f"nested attribute access {ast.dump(node)}")
        holder = self.env.get(node.value.id)
        if holder is None or isinstance(holder, np.ndarray):
            raise _unsupported(f"unknown environment object {node.value.id!r}")
        try:
            value = getattr(holder, node.attr)
        except AttributeError:
            raise _unsupported(
                f"environment object {node.value.id!r} has no field {node.attr!r}"
            ) from None
        return holder, node.attr, value

    # ------------------------------------------------------------ expressions
    def expr(self, node: ast.AST) -> Expr:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(node.value, int):
                raise _unsupported(f"non-integer constant {node.value!r}")
            return Const(int(node.value))
        if isinstance(node, ast.Name):
            temp = self._temps.get(node.id)
            if temp is not None:
                return temp
            if node.id == "_lidx":
                return Lane()
            if node.id == "_one":
                return Const(1)
            raise _unsupported(f"unknown name {node.id!r}")
        if isinstance(node, ast.BinOp):
            op = _BIN_OPS.get(type(node.op))
            if op is None:
                raise _unsupported(f"operator {type(node.op).__name__}")
            a, b = self.expr(node.left), self.expr(node.right)
            ty = BOOL if (op in "&|^" and a.ty == BOOL and b.ty == BOOL) else I64
            return Bin(op, a, b, ty)
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.USub):
                a = self.expr(node.operand)
                if isinstance(a, Const):
                    return Const(-a.value)
                return Unary("neg", a)
            if isinstance(node.op, ast.Invert):
                a = self.expr(node.operand)
                return Unary("inv", a, ty=a.ty)
            raise _unsupported(f"unary {type(node.op).__name__}")
        if isinstance(node, ast.Compare):
            if len(node.ops) != 1:
                raise _unsupported("chained comparison")
            op = _CMP_OPS.get(type(node.ops[0]))
            if op is None:
                raise _unsupported(f"comparison {type(node.ops[0]).__name__}")
            return Bin(op, self.expr(node.left), self.expr(node.comparators[0]), BOOL)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Subscript):
            return self._subscript(node)
        if isinstance(node, ast.Attribute):
            holder, name, value = self._holder_field(node)
            return StateRef(self._state_row(holder, name, None))
        raise _unsupported(f"expression {type(node).__name__}")

    def _call(self, node: ast.Call) -> Expr:
        if not isinstance(node.func, ast.Name) or node.keywords:
            raise _unsupported("call through attribute or with keywords")
        name, args = node.func.id, node.args
        if name == "_where" and len(args) == 3:
            cond, a, b = (self.expr(arg) for arg in args)
            ty = BOOL if a.ty == BOOL and b.ty == BOOL else I64
            return Where(cond, a, b, ty)
        if name == "_minimum" and len(args) == 2:
            return Min(self.expr(args[0]), self.expr(args[1]))
        if name == "_abs" and len(args) == 1:
            return Abs(self.expr(args[0]))
        if name == "_popcount" and len(args) == 1:
            return Popcount(self.expr(args[0]))
        raise _unsupported(f"call to {name!r}")

    def _subscript(self, node: ast.Subscript) -> Expr:
        value, index = node.value, node.slice
        if isinstance(value, ast.Name):
            if value.id == "v":
                if not (isinstance(index, ast.Constant) and isinstance(index.value, int)):
                    raise _unsupported("non-constant slot index")
                return SlotRef(int(index.value))
            array = self.env.get(value.id)
            if isinstance(array, np.ndarray) and array.ndim == 1:
                return Table(self._table_id(array), self.expr(index))
            raise _unsupported(f"subscript of {value.id!r}")
        if isinstance(value, ast.Call):
            # _stack((r0, r1, ...))[idx, _lidx] — the lane form of a mux
            if (
                isinstance(value.func, ast.Name)
                and value.func.id == "_stack"
                and len(value.args) == 1
                and isinstance(value.args[0], ast.Tuple)
                and isinstance(index, ast.Tuple)
                and len(index.elts) == 2
                and isinstance(index.elts[1], ast.Name)
                and index.elts[1].id == "_lidx"
            ):
                choices = tuple(self.expr(e) for e in value.args[0].elts)
                return Select(self.expr(index.elts[0]), choices)
            raise _unsupported("unrecognized call subscript")
        if isinstance(value, ast.Attribute):
            holder, name, live = self._holder_field(value)
            if isinstance(live, np.ndarray) and live.ndim == 2:
                if not (
                    isinstance(index, ast.Tuple)
                    and len(index.elts) == 2
                    and isinstance(index.elts[1], ast.Name)
                    and index.elts[1].id == "_lidx"
                ):
                    raise _unsupported("memory read must be [addr, _lidx]")
                return MemRead(self._mem_id(holder, name), self.expr(index.elts[0]))
            if isinstance(live, list):
                if not (isinstance(index, ast.Constant) and isinstance(index.value, int)):
                    raise _unsupported("non-constant state list index")
                return StateRef(self._state_row(holder, name, int(index.value)))
            raise _unsupported(f"subscript of state field {name!r}")
        raise _unsupported(f"subscript of {type(value).__name__}")

    # ------------------------------------------------------------- statements
    def _assign(self, node: ast.Assign, out: List[Stmt]) -> None:
        if len(node.targets) != 1:
            raise _unsupported("multiple assignment targets")
        target = node.targets[0]
        if isinstance(target, ast.Name):
            expr = self.expr(node.value)
            self._n_versions += 1
            temp = TempRef(f"t{self._n_versions}", expr.ty)
            self._temps[target.id] = temp
            out.append(SetTemp(temp.name, expr))
            return
        if isinstance(target, ast.Subscript):
            value, index = target.value, target.slice
            if isinstance(value, ast.Name) and value.id == "v":
                if not (isinstance(index, ast.Constant) and isinstance(index.value, int)):
                    raise _unsupported("non-constant slot store index")
                out.append(SetSlot(int(index.value), self.expr(node.value)))
                return
            if isinstance(value, ast.Attribute):
                holder, name, live = self._holder_field(value)
                if isinstance(live, list):
                    if not (isinstance(index, ast.Constant) and isinstance(index.value, int)):
                        raise _unsupported("non-constant state list store index")
                    row = self._state_row(holder, name, int(index.value))
                    out.append(SetState(row, self.expr(node.value)))
                    return
                if isinstance(live, np.ndarray) and live.ndim == 2:
                    out.append(self._mem_write(holder, name, target, node.value))
                    return
            raise _unsupported(f"store through {ast.dump(target)}")
        if isinstance(target, ast.Attribute):
            holder, name, live = self._holder_field(target)
            if isinstance(live, np.ndarray) and live.ndim == 1:
                out.append(SetState(self._state_row(holder, name, None), self.expr(node.value)))
                return
            if isinstance(live, list):
                # the power-model commit pair: `prev = pending_prev` swaps the
                # row lists, then `pending_prev = list(prev)` re-aliases.  In
                # value semantics that is a per-row copy plus a no-op.
                if (
                    isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Name)
                    and node.value.func.id == "list"
                ):
                    return  # re-aliasing after the copy: nothing to do
                if isinstance(node.value, ast.Attribute):
                    src_holder, src_name, src_live = self._holder_field(node.value)
                    if isinstance(src_live, list) and len(src_live) == len(live):
                        for i in range(len(live)):
                            out.append(SetState(
                                self._state_row(holder, name, i),
                                StateRef(self._state_row(src_holder, src_name, i)),
                            ))
                        return
            raise _unsupported(f"store to state field {name!r}")
        raise _unsupported(f"assignment to {type(target).__name__}")

    def _mem_write(self, holder, name: str, target: ast.Subscript, value: ast.AST) -> MemWrite:
        """``mem[addr[_msk], _lidx[_msk]] = data[_msk]`` -> guarded store."""

        def unmask(node: ast.AST) -> Tuple[ast.AST, str]:
            if not (
                isinstance(node, ast.Subscript)
                and isinstance(node.slice, ast.Name)
                and node.slice.id in self._temps
                and self._temps[node.slice.id].ty == BOOL
            ):
                raise _unsupported("memory store is not a masked scatter")
            return node.value, node.slice.id

        index = target.slice
        if not (isinstance(index, ast.Tuple) and len(index.elts) == 2):
            raise _unsupported("memory store must index [addr, lane]")
        addr_node, mask_a = unmask(index.elts[0])
        lane_node, mask_b = unmask(index.elts[1])
        data_node, mask_c = unmask(value)
        if not (isinstance(lane_node, ast.Name) and lane_node.id == "_lidx"):
            raise _unsupported("memory store lane index must be _lidx")
        if len({mask_a, mask_b, mask_c}) != 1:
            raise _unsupported("memory store masks disagree")
        return MemWrite(
            mem=self._mem_id(holder, name),
            addr=self.expr(addr_node),
            data=self.expr(data_node),
            enable=self._temps[mask_a],
        )

    def function(self, node: ast.FunctionDef) -> List[Stmt]:
        self._temps = {}
        out: List[Stmt] = []
        for stmt in node.body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Assign):
                self._assign(stmt, out)
                continue
            if isinstance(stmt, ast.Expr):
                # lane-scalar fallback calls (`_lcK.evaluate(v)`): the module
                # contains components the batch compiler could not fuse
                raise _unsupported("module uses the lane-scalar fallback path")
            raise _unsupported(f"statement {type(stmt).__name__}")
        return out


def extract_ir(
    source: str,
    env: Dict[str, object],
    n_slots: int,
    functions: Sequence[Tuple[str, str]] = (("_settle", "settle"), ("_clock_edge", "clock_edge")),
    dtype: str = "int64",
) -> KernelIR:
    """Extract the typed kernel IR from one generated lane program.

    ``functions`` maps source-level function names to IR phase names.  Raises
    :class:`KernelUnsupportedError` when any statement falls outside the
    closed lane-program grammar.
    """
    tree = ast.parse(source)
    defs = {f.name: f for f in tree.body if isinstance(f, ast.FunctionDef)}
    extractor = _Extractor(env, n_slots, dtype)
    for source_name, phase in functions:
        fn = defs.get(source_name)
        if fn is None:
            raise _unsupported(f"program has no function {source_name!r}")
        extractor.ir.phases[phase] = extractor.function(fn)
    return extractor.ir
