"""Power modeling and software power estimation.

This package implements the characterization-based RTL power-estimation
methodology the paper builds on (Section 2.1):

* :mod:`repro.power.technology` — operating point (supply, clock) and unit
  conversions,
* :mod:`repro.power.macromodel` — cycle-accurate power macromodels, foremost
  the linear transition-count regression model
  ``Power = sum_i Coeff_i * T(x_i)``,
* :mod:`repro.power.library` — the "power macromodel library" keyed by RTL
  component type/shape, with analytic seed models and characterized models,
* :mod:`repro.power.characterize` — characterization of macromodels against
  gate-level reference implementations,
* :mod:`repro.power.rtl_estimator` — the software RTL power estimator
  (the algorithm inside NEC-RTpower / PowerTheater-class tools),
* :mod:`repro.power.gate_estimator` — the much slower gate-level estimation
  baseline,
* :mod:`repro.power.commercial` — calibrated runtime models of the two
  commercial tools used in the paper's Figure 3,
* :mod:`repro.power.report` — power report data structures,
* :mod:`repro.power.profile` — windowed power telemetry: time- and
  component-resolved energy profiles with hotspot analysis.
"""

from repro.power.technology import Technology, CB130M_TECHNOLOGY
from repro.power.macromodel import (
    PowerMacromodel,
    LinearTransitionModel,
    LUTPowerModel,
    CharacterizationMetrics,
)
from repro.power.library import PowerModelLibrary, SeedModelBuilder, build_seed_library
from repro.power.characterize import (
    CharacterizationEngine,
    CharacterizationResult,
    EngineSettings,
    characterize_many,
    generate_training_pairs,
    holdout_error,
)
from repro.power.report import ComponentPower, PowerReport
from repro.power.profile import (
    PowerProfile,
    ProfileConfig,
    WindowedEnergyCollector,
)
from repro.power.rtl_estimator import RTLPowerEstimator
from repro.power.lane_estimator import BatchRTLPowerEstimator
from repro.power.gate_estimator import GateLevelPowerEstimator
from repro.power.commercial import (
    CommercialToolModel,
    POWERTHEATER,
    NEC_RTPOWER,
    calibrate_tool,
)

__all__ = [
    "Technology",
    "CB130M_TECHNOLOGY",
    "PowerMacromodel",
    "LinearTransitionModel",
    "LUTPowerModel",
    "CharacterizationMetrics",
    "PowerModelLibrary",
    "SeedModelBuilder",
    "build_seed_library",
    "CharacterizationEngine",
    "CharacterizationResult",
    "EngineSettings",
    "characterize_many",
    "generate_training_pairs",
    "holdout_error",
    "ComponentPower",
    "PowerReport",
    "PowerProfile",
    "ProfileConfig",
    "WindowedEnergyCollector",
    "RTLPowerEstimator",
    "BatchRTLPowerEstimator",
    "GateLevelPowerEstimator",
    "CommercialToolModel",
    "POWERTHEATER",
    "NEC_RTPOWER",
    "calibrate_tool",
]
