"""Sequential (stateful) RTL components: registers, counters, memories.

The cycle-accurate simulator drives sequential components with a two-phase
protocol per clock cycle:

1. combinational settle — :meth:`Component.evaluate` is called; for purely
   registered outputs this only reads the current state,
2. clock edge — :meth:`SequentialComponent.capture` latches the next state
   from the component's input values, then :meth:`SequentialComponent.commit`
   makes it current.

Components whose outputs depend combinationally on their inputs *and* their
state (asynchronous-read memories, register files) set ``has_comb_path`` so
that the scheduler levelizes them with the combinational logic.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.netlist.components import Component
from repro.netlist.ports import Port
from repro.netlist.signals import mask_value


class SequentialComponent(Component):
    """Base class for stateful components."""

    is_sequential = True
    has_comb_path = False

    def reset(self) -> None:
        """Return the component to its power-on/reset state."""
        raise NotImplementedError

    def capture(self, inputs: Mapping[str, int]) -> None:
        """Sample inputs at the clock edge and compute the pending next state."""
        raise NotImplementedError

    def commit(self) -> None:
        """Make the pending next state current (end of the clock edge)."""
        raise NotImplementedError


class Register(SequentialComponent):
    """Edge-triggered register with optional clock enable and synchronous clear."""

    type_name = "register"

    def __init__(
        self,
        name: str,
        width: int,
        reset_value: int = 0,
        has_enable: bool = False,
        has_clear: bool = False,
    ) -> None:
        super().__init__(name)
        self.width = width
        self.reset_value = mask_value(reset_value, width)
        self.has_enable = has_enable
        self.has_clear = has_clear
        self.params = {
            "width": width,
            "reset_value": self.reset_value,
            "has_enable": has_enable,
            "has_clear": has_clear,
        }
        self.add_input("d", width)
        if has_enable:
            self.add_input("en", 1)
        if has_clear:
            self.add_input("clear", 1)
        self.add_output("q", width)
        self._state = self.reset_value
        self._pending = self.reset_value

    def reset(self) -> None:
        self._state = self.reset_value
        self._pending = self.reset_value

    @property
    def value(self) -> int:
        """Current stored value (useful for debugging and testbenches)."""
        return self._state

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        return {"q": self._state}

    def capture(self, inputs: Mapping[str, int]) -> None:
        if self.has_clear and (inputs.get("clear", 0) & 1):
            self._pending = self.reset_value
        elif not self.has_enable or (inputs.get("en", 1) & 1):
            self._pending = mask_value(inputs["d"], self.width)
        else:
            self._pending = self._state

    def commit(self) -> None:
        self._state = self._pending


class Counter(SequentialComponent):
    """Up-counter with enable and optional synchronous load and wrap limit."""

    type_name = "counter"

    def __init__(
        self,
        name: str,
        width: int,
        has_load: bool = False,
        wrap_at: Optional[int] = None,
    ) -> None:
        super().__init__(name)
        self.width = width
        self.has_load = has_load
        self.wrap_at = wrap_at
        self.params = {"width": width, "has_load": has_load, "wrap_at": wrap_at}
        self.add_input("en", 1)
        if has_load:
            self.add_input("load", 1)
            self.add_input("d", width)
        self.add_output("q", width)
        self._state = 0
        self._pending = 0

    def reset(self) -> None:
        self._state = 0
        self._pending = 0

    @property
    def value(self) -> int:
        return self._state

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        return {"q": self._state}

    def capture(self, inputs: Mapping[str, int]) -> None:
        if self.has_load and (inputs.get("load", 0) & 1):
            self._pending = mask_value(inputs["d"], self.width)
            return
        if inputs.get("en", 0) & 1:
            nxt = self._state + 1
            if self.wrap_at is not None and nxt >= self.wrap_at:
                nxt = 0
            self._pending = mask_value(nxt, self.width)
        else:
            self._pending = self._state

    def commit(self) -> None:
        self._state = self._pending


class Accumulator(SequentialComponent):
    """Accumulating register: ``q <= q + d`` when enabled, cleared synchronously.

    This is the storage element behind the paper's power aggregator: the
    outputs of all hardware power models are summed into an accumulator that
    holds the design's total power (energy) so far.
    """

    type_name = "accumulator"

    def __init__(self, name: str, width: int) -> None:
        super().__init__(name)
        self.width = width
        self.params = {"width": width}
        self.add_input("d", width)
        self.add_input("en", 1)
        self.add_input("clear", 1)
        self.add_output("q", width)
        self._state = 0
        self._pending = 0

    def reset(self) -> None:
        self._state = 0
        self._pending = 0

    @property
    def value(self) -> int:
        return self._state

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        return {"q": self._state}

    def capture(self, inputs: Mapping[str, int]) -> None:
        if inputs.get("clear", 0) & 1:
            self._pending = 0
        elif inputs.get("en", 0) & 1:
            self._pending = mask_value(self._state + inputs["d"], self.width)
        else:
            self._pending = self._state

    def commit(self) -> None:
        self._state = self._pending


class RegisterFile(SequentialComponent):
    """Small multi-read-port register file with asynchronous reads.

    Ports: ``we``/``waddr``/``wdata`` for the single write port and
    ``raddr{i}``/``rdata{i}`` for each of ``n_read_ports`` read ports.
    """

    type_name = "regfile"
    has_comb_path = True

    def __init__(
        self,
        name: str,
        width: int,
        depth: int,
        n_read_ports: int = 1,
        initial: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(name)
        if depth < 1:
            raise ValueError(f"register file depth must be >= 1, got {depth}")
        self.width = width
        self.depth = depth
        self.n_read_ports = n_read_ports
        self.addr_width = max(1, (depth - 1).bit_length())
        self.params = {"width": width, "depth": depth, "n_read_ports": n_read_ports}
        self.add_input("we", 1)
        self.add_input("waddr", self.addr_width)
        self.add_input("wdata", width)
        for i in range(n_read_ports):
            self.add_input(f"raddr{i}", self.addr_width)
            self.add_output(f"rdata{i}", width)
        self._initial = list(initial) if initial is not None else [0] * depth
        if len(self._initial) != depth:
            raise ValueError("initial contents length must equal depth")
        self._state: List[int] = [mask_value(v, width) for v in self._initial]
        self._pending_write: Optional[tuple] = None

    def reset(self) -> None:
        self._state = [mask_value(v, self.width) for v in self._initial]
        self._pending_write = None

    def read_word(self, addr: int) -> int:
        """Backdoor read for testbenches and verification."""
        return self._state[addr]

    def write_word(self, addr: int, value: int) -> None:
        """Backdoor write for testbench initialization."""
        self._state[addr] = mask_value(value, self.width)

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for i in range(self.n_read_ports):
            addr = inputs.get(f"raddr{i}", 0) % self.depth
            out[f"rdata{i}"] = self._state[addr]
        return out

    def capture(self, inputs: Mapping[str, int]) -> None:
        if inputs.get("we", 0) & 1:
            addr = inputs.get("waddr", 0) % self.depth
            self._pending_write = (addr, mask_value(inputs.get("wdata", 0), self.width))
        else:
            self._pending_write = None

    def commit(self) -> None:
        if self._pending_write is not None:
            addr, value = self._pending_write
            self._state[addr] = value
            self._pending_write = None


class Memory(SequentialComponent):
    """Single-port RAM.  Reads are synchronous by default (registered output)."""

    type_name = "memory"

    def __init__(
        self,
        name: str,
        width: int,
        depth: int,
        sync_read: bool = True,
        initial: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(name)
        if depth < 1:
            raise ValueError(f"memory depth must be >= 1, got {depth}")
        self.width = width
        self.depth = depth
        self.sync_read = sync_read
        self.addr_width = max(1, (depth - 1).bit_length())
        self.params = {"width": width, "depth": depth, "sync_read": sync_read}
        self.add_input("we", 1)
        self.add_input("addr", self.addr_width)
        self.add_input("wdata", width)
        self.add_output("rdata", width)
        self._initial = list(initial) if initial is not None else [0] * depth
        if len(self._initial) != depth:
            raise ValueError("initial contents length must equal depth")
        self._state: List[int] = [mask_value(v, width) for v in self._initial]
        self._read_reg = 0
        self._pending_write: Optional[tuple] = None
        self._pending_read = 0
        if not sync_read:
            # asynchronous read: output follows addr combinationally
            self.has_comb_path = True

    def reset(self) -> None:
        self._state = [mask_value(v, self.width) for v in self._initial]
        self._read_reg = 0
        self._pending_write = None
        self._pending_read = 0

    def read_word(self, addr: int) -> int:
        """Backdoor read for testbenches and verification."""
        return self._state[addr]

    def write_word(self, addr: int, value: int) -> None:
        """Backdoor write for testbench initialization."""
        self._state[addr] = mask_value(value, self.width)

    def load(self, contents: Sequence[int], offset: int = 0) -> None:
        """Backdoor-load a block of words starting at ``offset``."""
        for i, value in enumerate(contents):
            self.write_word(offset + i, value)

    def monitored_ports(self) -> List[Port]:
        # Power for memories is modelled from the access ports only (the
        # storage array itself is covered by an analytic per-access model).
        return list(self.ports.values())

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        if self.sync_read:
            return {"rdata": self._read_reg}
        addr = inputs.get("addr", 0) % self.depth
        return {"rdata": self._state[addr]}

    def capture(self, inputs: Mapping[str, int]) -> None:
        addr = inputs.get("addr", 0) % self.depth
        if inputs.get("we", 0) & 1:
            self._pending_write = (addr, mask_value(inputs.get("wdata", 0), self.width))
        else:
            self._pending_write = None
        # read-before-write semantics for the registered read port
        self._pending_read = self._state[addr]

    def commit(self) -> None:
        if self.sync_read:
            self._read_reg = self._pending_read
        if self._pending_write is not None:
            addr, value = self._pending_write
            self._state[addr] = value
            self._pending_write = None


class ROM(Component):
    """Read-only memory with combinational (asynchronous) read."""

    type_name = "rom"
    has_comb_path = True

    def __init__(self, name: str, width: int, contents: Sequence[int]) -> None:
        super().__init__(name)
        if not contents:
            raise ValueError("ROM contents must not be empty")
        self.width = width
        self.depth = len(contents)
        self.addr_width = max(1, (self.depth - 1).bit_length())
        self.params = {"width": width, "depth": self.depth}
        self.contents = [mask_value(v, width) for v in contents]
        self.add_input("addr", self.addr_width)
        self.add_output("rdata", width)

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        return {"rdata": self.contents[inputs.get("addr", 0) % self.depth]}
