"""A small behavioral-synthesis (high-level synthesis) substrate.

The paper's benchmark RTL is produced by NEC's CYBER behavioral synthesis tool
from C descriptions.  This package provides the equivalent substrate for
dataflow kernels: a dataflow-graph IR, ASAP/ALAP/resource-constrained list
scheduling, functional-unit allocation and binding, left-edge register
binding, and datapath + FSM controller generation into the RTL netlist IR.
The generated designs are ordinary :class:`repro.netlist.module.Module`
objects, so they flow through power estimation and power emulation exactly
like the hand-written benchmarks.
"""

from repro.hls.dfg import DataflowGraph, DFGNode, DFGError
from repro.hls.scheduling import (
    Schedule,
    asap_schedule,
    alap_schedule,
    list_schedule,
    OP_CLASSES,
)
from repro.hls.allocation import Allocation, allocate
from repro.hls.binding import Binding, bind
from repro.hls.datapath import generate_datapath
from repro.hls.synthesize import HLSResult, synthesize

__all__ = [
    "DataflowGraph",
    "DFGNode",
    "DFGError",
    "Schedule",
    "asap_schedule",
    "alap_schedule",
    "list_schedule",
    "OP_CLASSES",
    "Allocation",
    "allocate",
    "Binding",
    "bind",
    "generate_datapath",
    "HLSResult",
    "synthesize",
]
