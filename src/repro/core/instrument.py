"""The power-emulation instrumentation pass (paper Fig. 1, step 1 of Fig. 2).

``instrument(design, library)`` returns an *enhanced* copy of the design in
which:

* every monitored RTL component has a :class:`HardwarePowerModel` attached to
  its input/output nets,
* a single :class:`PowerStrobeGenerator` paces model evaluation (one per
  clock domain; our designs are single-clock),
* a :class:`PowerAggregator` sums all model outputs into the design's total
  energy, exposed as the new ``power_total`` output port,
* (optionally) one accumulator per monitored component records per-component
  energy, so the host can read back a power breakdown "for the circuit or any
  part thereof" as the paper puts it.

The enhanced design is still a plain RTL netlist: it simulates on
:mod:`repro.sim`, maps through the FPGA resource estimator, and its power
outputs are produced by the inserted hardware itself — not by any software
observer — which is the essence of power emulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.aggregator import PowerAggregator
from repro.core.fixedpoint import FixedPointFormat
from repro.core.power_model_hw import MONITOR_PREFIX, HardwarePowerModel
from repro.core.strobe import PowerStrobeGenerator
from repro.netlist.components import Component, Constant
from repro.netlist.flatten import flatten
from repro.netlist.module import Module
from repro.netlist.nets import Net
from repro.power.library import PowerModelLibrary
from repro.power.macromodel import LinearTransitionModel

#: component types that are themselves power-estimation hardware
ESTIMATION_HARDWARE_TYPES = {"power_model_hw", "power_strobe", "power_aggregator"}


class InstrumentationError(Exception):
    """Raised when a design cannot be enhanced for power emulation."""


@dataclass
class InstrumentationConfig:
    """Knobs of the instrumentation pass."""

    #: power strobe period in clock cycles (1 = evaluate every cycle)
    strobe_period: int = 1
    #: bit width of the fixed-point coefficient codes inside the power models
    coefficient_bits: int = 12
    #: width of each power model's energy output
    energy_width: int = 32
    #: width of the aggregator's total-energy accumulator
    total_width: int = 48
    #: also insert one per-component energy accumulator per power model
    per_component_totals: bool = True
    #: paper-literal sampling (queues only updated on the strobe); see
    #: :class:`repro.core.power_model_hw.HardwarePowerModel`
    sample_on_strobe_only: bool = False
    #: predicate selecting which components receive a power model
    monitor_filter: Optional[Callable[[Component], bool]] = None


@dataclass
class InstrumentedDesign:
    """The enhanced design plus everything needed to interpret its outputs."""

    module: Module
    original_name: str
    config: InstrumentationConfig
    fmt: FixedPointFormat
    #: original component name -> hardware power model component name
    model_map: Dict[str, str] = field(default_factory=dict)
    #: original component name -> per-component accumulator name (if enabled)
    accumulator_map: Dict[str, str] = field(default_factory=dict)
    aggregator_name: str = "pwr_aggregator"
    strobe_name: str = "pwr_strobe"
    #: number of monitored bits across all inserted power models
    monitored_bits: int = 0

    @property
    def n_power_models(self) -> int:
        return len(self.model_map)

    # ------------------------------------------------------------- readback
    def read_total_energy_code(self, simulator) -> int:
        """Raw aggregator contents (fixed-point energy code)."""
        aggregator: PowerAggregator = self.module.components[self.aggregator_name]
        return aggregator.value

    def read_total_energy_fj(self, simulator) -> float:
        """Total design energy (fJ) accumulated so far, as the host reads it."""
        return self.fmt.dequantize(self.read_total_energy_code(simulator))

    def read_component_energy_fj(self, simulator, original_name: str) -> float:
        """Per-component energy read from that component's accumulator."""
        if original_name not in self.accumulator_map:
            raise KeyError(
                f"no per-component accumulator for {original_name!r}; "
                "instrument with per_component_totals=True"
            )
        accumulator = self.module.components[self.accumulator_map[original_name]]
        return self.fmt.dequantize(accumulator.value)

    def component_energies_fj(self, simulator) -> Dict[str, float]:
        """Energy of every monitored component (requires per-component totals)."""
        return {
            name: self.read_component_energy_fj(simulator, name)
            for name in self.accumulator_map
        }


def instrument(
    module: Module,
    library: PowerModelLibrary,
    config: Optional[InstrumentationConfig] = None,
) -> InstrumentedDesign:
    """Enhance ``module`` with power-estimation hardware.

    The input module is never modified; a flattened copy is enhanced and
    returned.
    """
    config = config if config is not None else InstrumentationConfig()
    enhanced = flatten(module, name=f"{module.name}_pwr_emu")

    if any(c.type_name in ESTIMATION_HARDWARE_TYPES for c in enhanced.components.values()):
        raise InstrumentationError(
            f"module {module.name!r} already contains power-estimation hardware"
        )

    monitored: List[Component] = []
    models: Dict[str, LinearTransitionModel] = {}
    for component in enhanced.components.values():
        if not component.monitored_ports():
            continue
        if config.monitor_filter is not None and not config.monitor_filter(component):
            continue
        model = library.lookup(component)
        if not isinstance(model, LinearTransitionModel):
            raise InstrumentationError(
                f"component {component.name!r} has a {model.kind!r} power model; only "
                "linear-transition models are synthesizable into power-estimation hardware"
            )
        monitored.append(component)
        models[component.name] = model
    if not monitored:
        raise InstrumentationError(
            f"module {module.name!r} has no components eligible for power monitoring"
        )

    # One global fixed-point scale shared by every model and the aggregator.
    all_values = [
        value
        for model in models.values()
        for _, _, value in model.flat_coefficients()
    ] + [model.base_energy_fj for model in models.values()]
    fmt = FixedPointFormat.for_coefficients(all_values, bits=config.coefficient_bits)

    helper = _NetHelper(enhanced)
    strobe_gen = PowerStrobeGenerator("pwr_strobe", period=config.strobe_period)
    enhanced.add_component(strobe_gen)
    strobe_gen.connect("enable", helper.constant(1, 1))
    strobe_net = helper.new_net("pwr_strobe_out", 1)
    strobe_gen.connect("strobe", strobe_net)

    design = InstrumentedDesign(
        module=enhanced,
        original_name=module.name,
        config=config,
        fmt=fmt,
        strobe_name="pwr_strobe",
    )

    energy_nets: List[Net] = []
    for component in monitored:
        model = models[component.name]
        hw_name = f"pwr_model_{component.name}"
        hw = HardwarePowerModel(
            hw_name,
            model,
            fmt,
            energy_width=config.energy_width,
            monitored_component=component.name,
            sample_on_strobe_only=config.sample_on_strobe_only,
        )
        enhanced.add_component(hw)
        for port in component.monitored_ports():
            target = port.net
            if target is None:
                target = helper.constant(0, port.width)
            hw.connect(MONITOR_PREFIX + port.name, target)
        hw.connect("strobe", strobe_net)
        energy_net = helper.new_net(f"{hw_name}_energy", config.energy_width)
        hw.connect("energy", energy_net)
        energy_nets.append(energy_net)
        design.model_map[component.name] = hw_name
        design.monitored_bits += model.total_bits

        if config.per_component_totals:
            from repro.netlist.sequential import Accumulator

            acc_name = f"pwr_acc_{component.name}"
            accumulator = Accumulator(acc_name, config.total_width)
            enhanced.add_component(accumulator)
            accumulator.connect("d", helper.resize(energy_net, config.total_width))
            accumulator.connect("en", helper.constant(1, 1))
            accumulator.connect("clear", helper.constant(0, 1))
            acc_out = helper.new_net(f"{acc_name}_q", config.total_width)
            accumulator.connect("q", acc_out)
            design.accumulator_map[component.name] = acc_name

    aggregator = PowerAggregator(
        "pwr_aggregator",
        n_inputs=len(energy_nets),
        input_width=config.energy_width,
        total_width=config.total_width,
    )
    enhanced.add_component(aggregator)
    for i, net in enumerate(energy_nets):
        aggregator.connect(f"e{i}", net)
    aggregator.connect("clear", helper.constant(0, 1))
    total_net = helper.new_net("pwr_total", config.total_width)
    aggregator.connect("total", total_net)
    enhanced.add_output("power_total", total_net)
    enhanced.add_output("power_strobe", strobe_net)

    design.aggregator_name = "pwr_aggregator"
    return design


class _NetHelper:
    """Small utilities for adding tie-off constants and resize logic."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self._constants: Dict[tuple, Net] = {}
        self._counter = 0

    def new_net(self, name: str, width: int) -> Net:
        if name in self.module.nets:
            name = f"{name}_{self._counter}"
            self._counter += 1
        return self.module.add_net(name, width)

    def constant(self, value: int, width: int) -> Net:
        key = (value, width)
        if key not in self._constants:
            name = f"pwr_const_{value}_{width}"
            component = Constant(name, width, value)
            self.module.add_component(component)
            net = self.new_net(f"{name}_y", width)
            component.connect("y", net)
            self._constants[key] = net
        return self._constants[key]

    def resize(self, net: Net, width: int) -> Net:
        if net.width == width:
            return net
        from repro.netlist.components import Extend, Slice

        if net.width < width:
            component = Extend(f"pwr_zext_{net.name}_{width}", net.width, width, signed=False)
        else:
            component = Slice(f"pwr_trunc_{net.name}_{width}", net.width, width - 1, 0)
        self.module.add_component(component)
        component.connect("a", net)
        out = self.new_net(f"{component.name}_y", width)
        component.connect("y", out)
        return out
