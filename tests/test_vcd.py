"""Tests for the VCD writer, parser and activity counter."""

from __future__ import annotations

import pytest

from repro.netlist import NetlistBuilder, flatten
from repro.sim import Simulator, SignalTrace, WaveformRecorder
from repro.vcd import (
    VCDParseError,
    activity_from_vcd,
    parse_vcd,
    vcd_string,
)
from repro.vcd.writer import _identifier


def build_toggler():
    b = NetlistBuilder("toggler")
    d = b.input("d", 4)
    q = b.pipe(d, name="r0")
    b.output("q", q)
    return b.build()


def run_and_dump(n_cycles=8):
    module = flatten(build_toggler())
    sim = Simulator(module)
    recorder = sim.add_observer(WaveformRecorder())
    trace = sim.add_observer(SignalTrace())
    for cycle in range(n_cycles):
        sim.step({"d": (0xF if cycle % 2 else 0x0)})
    text = vcd_string(recorder.by_name(), module_name="toggler", clock_period_ns=10)
    return text, trace


def test_identifier_generation_unique():
    ids = {_identifier(i) for i in range(500)}
    assert len(ids) == 500
    assert _identifier(0) == "!"
    with pytest.raises(ValueError):
        _identifier(-1)


def test_vcd_round_trip_structure():
    text, _ = run_and_dump()
    vcd = parse_vcd(text)
    names = {s.name for s in vcd.signals.values()}
    # output port "q" aliases the register's net, so the dumped signal is r0_q
    assert {"d", "r0_q"} <= names
    assert vcd.end_time > 0
    by_name = vcd.by_name()
    assert by_name["d"].width == 4
    assert by_name["d"].scope == "toggler"


def test_vcd_activity_matches_signal_trace():
    text, trace = run_and_dump()
    summary = activity_from_vcd(text, clock_period_ns=10)
    live = trace.by_name()
    # toggle counts from the VCD must equal the live trace for every signal
    for name in ("d", "r0_q"):
        assert summary.toggles[name] == live[name].toggles
    assert summary.total_toggles() > 0
    assert 0.0 <= summary.toggle_density("d") <= 1.0


def test_vcd_value_at_and_toggle_count():
    text, _ = run_and_dump()
    vcd = parse_vcd(text)
    d = vcd.by_name()["d"]
    assert d.value_at(0) == 0
    assert d.value_at(10_000) in (0x0, 0xF)
    assert d.toggle_count() > 0


def test_parser_rejects_malformed_input():
    with pytest.raises(VCDParseError):
        parse_vcd("$var wire 8 ! sig $end $enddefinitions $end #0 b1z1 @")
    with pytest.raises(VCDParseError):
        parse_vcd("$enddefinitions $end #0 1%")


def test_parser_tolerates_unknown_sections():
    text = (
        "$date today $end\n$version tool $end\n$comment hello $end\n"
        "$timescale 1 ps $end\n"
        "$scope module top $end\n$var wire 1 ! clk $end\n$upscope $end\n"
        "$enddefinitions $end\n#0\n$dumpvars\n0!\n$end\n#5\n1!\n#10\n0!\n"
    )
    vcd = parse_vcd(text)
    assert vcd.timescale == "1 ps"
    clk = vcd.by_name()["clk"]
    assert clk.toggle_count() == 2
    assert vcd.end_time == 10


def test_activity_summary_cycle_count():
    text, _ = run_and_dump(n_cycles=8)
    summary = activity_from_vcd(text, clock_period_ns=10)
    assert summary.n_cycles >= 8
