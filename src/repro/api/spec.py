"""Declarative run/sweep specifications and the uniform estimation result.

A :class:`RunSpec` names *what* to estimate — a registry design, an engine,
a stimulus seed, a cycle budget, a simulation backend — without touching any
engine API.  Every engine adapter (:mod:`repro.api.estimators`) consumes the
same spec and produces the same :class:`EstimateResult`: the
:class:`~repro.power.report.PowerReport`, a wall-clock timing breakdown, the
resolved engine/backend metadata, and (optionally) accuracy against the
software RTL baseline.  Specs and results are frozen/plain dataclasses with
``to_json``/``from_json``, so the :mod:`repro.bench.cache` layer can persist
them and the CLI can emit them as artifacts.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.power.profile import PowerProfile
from repro.power.report import PowerReport
#: lane-kernel backends selectable by ``RunSpec.kernel_backend`` (the fused
#: settle/clock-edge kernels of :mod:`repro.sim.kernels`; only consulted on
#: the batch lane path — ``auto`` = NumPy fusion, ``native`` = C via cffi
#: with graceful fallback, ``off`` = per-op NumPy dispatch); re-exported from
#: the kernels package so the list cannot drift
from repro.sim.kernels import KERNEL_BACKENDS
from repro.stim.spec import StimulusSpec

#: engines selectable by ``RunSpec.engine``
ENGINES: Tuple[str, ...] = ("rtl", "gate", "emulation")

#: simulation backends selectable by ``RunSpec.backend``
BACKENDS: Tuple[str, ...] = ("auto", "compiled", "interp", "batch")

#: failure policies selectable by ``SweepSpec.on_error``
ON_ERROR_POLICIES: Tuple[str, ...] = ("raise", "skip")

#: spec fields that configure *execution robustness* rather than result
#: identity — excluded from cache keys (a retried run is still the same run)
EXECUTION_POLICY_FIELDS: Tuple[str, ...] = ("timeout_s", "max_retries")

#: spec fields that may differ between lane-mates of one shared batch: the
#: stimulus seed (each seed is its own lane), per-result shaping
#: (``keep_cycle_trace``/``compare_to_rtl``/``power_profile``/
#: ``profile_window`` are applied per spec after the shared simulation) and
#: the execution-policy fields above
COALESCE_FREE_FIELDS: Tuple[str, ...] = EXECUTION_POLICY_FIELDS + (
    "seed",
    "keep_cycle_trace",
    "compare_to_rtl",
    "power_profile",
    "profile_window",
)


def _check_policy_fields(timeout_s, max_retries) -> None:
    if timeout_s is not None and timeout_s <= 0:
        raise ValueError(f"timeout_s must be > 0 seconds, got {timeout_s}")
    if max_retries is not None and max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")


def _coerce_stimulus(value) -> Optional[StimulusSpec]:
    """Accept a StimulusSpec, its dict payload (JSON round trips), or None."""
    if isinstance(value, dict):
        return StimulusSpec.from_dict(value)
    if value is not None and not isinstance(value, StimulusSpec):
        raise ValueError(
            f"stimulus must be a repro.stim.StimulusSpec (or its dict "
            f"payload), got {type(value).__name__}"
        )
    return value


@dataclass(frozen=True)
class RunSpec:
    """One power-estimation run, declaratively.

    ``design`` names an entry of :mod:`repro.designs.registry`; ``engine``
    selects the estimation engine (``rtl`` — the software RTL macromodel
    estimator, ``gate`` — the gate-level re-simulation baseline,
    ``emulation`` — the paper's instrumented-FPGA flow).  ``seed`` re-seeds
    the design's scaled-workload stimulus (``None`` = the design default);
    ``backend`` picks the functional-simulation strategy (``auto`` resolves
    to ``compiled``; ``batch`` runs the RTL engine over BatchSimulator
    lanes).  ``stimulus`` replaces the design's built-in testbench with a
    declarative :class:`~repro.stim.spec.StimulusSpec` scenario (driven as a
    :class:`~repro.stim.testbench.SpecTestbench`, and as the vectorized
    array driver on the lane path); a plain dict payload is accepted and
    coerced.  ``compare_to_rtl`` attaches accuracy against a software-RTL
    reference run of the same design/seed.
    """

    design: str
    engine: str = "rtl"
    seed: Optional[int] = None
    stimulus: Optional[StimulusSpec] = None
    max_cycles: Optional[int] = None
    backend: str = "auto"
    #: fused lane-kernel backend for batch execution (see KERNEL_BACKENDS)
    kernel_backend: str = "auto"
    #: native-kernel worker count for batch execution (``None`` = the
    #: ``REPRO_KERNEL_THREADS`` env / ``auto`` = min(cores, n_lanes/128));
    #: any count is bit-identical — this is purely a throughput knob
    kernel_threads: Optional[int] = None
    library: str = "seed"
    #: fixed-point coefficient width of the instrumentation (emulation engine)
    coefficient_bits: int = 12
    #: nominal workload the emulation time model is evaluated at
    #: (``None`` = the executed cycle count)
    workload_cycles: Optional[int] = None
    #: model the testbench as mapped onto the FPGA (emulation engine)
    testbench_on_fpga: bool = False
    keep_cycle_trace: bool = False
    compare_to_rtl: bool = False
    #: collect a windowed per-component power profile alongside the report
    #: (attached as ``EstimateResult.profile``)
    power_profile: bool = False
    #: profile window width in cycles (``None`` = the engine default: one
    #: cycle on the software estimators, the strobe period on emulation)
    profile_window: Optional[int] = None
    #: per-task wall-clock deadline when executed by the resilient sweep/shard
    #: layer (``None`` = the ``REPRO_TASK_TIMEOUT_S`` env, else no deadline)
    timeout_s: Optional[float] = None
    #: retries after the first attempt under the resilient layer
    #: (``None`` = the ``REPRO_TASK_RETRIES`` env, else 0)
    max_retries: Optional[int] = None

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {', '.join(ENGINES)}"
            )
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {', '.join(BACKENDS)}"
            )
        if self.kernel_backend not in KERNEL_BACKENDS:
            raise ValueError(
                f"unknown kernel backend {self.kernel_backend!r}; expected one "
                f"of {', '.join(KERNEL_BACKENDS)}"
            )
        if self.kernel_threads is not None and self.kernel_threads < 1:
            raise ValueError(
                f"kernel_threads must be >= 1 (or None for auto), got "
                f"{self.kernel_threads}"
            )
        if self.backend == "batch" and self.engine != "rtl":
            raise ValueError(
                f"backend 'batch' is only available for the 'rtl' engine, "
                f"not {self.engine!r} (gate/emulation engines observe scalar "
                f"simulations)"
            )
        if self.library != "seed":
            raise ValueError(
                f"unknown power-model library {self.library!r}; only the "
                f"deterministic 'seed' library is registered"
            )
        if self.profile_window is not None and self.profile_window < 1:
            raise ValueError(
                f"profile_window must be >= 1 cycle (or None for the engine "
                f"default), got {self.profile_window}"
            )
        _check_policy_fields(self.timeout_s, self.max_retries)
        object.__setattr__(self, "stimulus", _coerce_stimulus(self.stimulus))

    # -------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, object]:
        payload = dataclasses.asdict(self)
        if self.stimulus is not None:
            # asdict() would drop the port-spec `kind` discriminators
            payload["stimulus"] = self.stimulus.to_dict()
        return payload

    def cache_dict(self) -> Dict[str, object]:
        """The spec as a cache-key payload: execution policy excluded.

        Retrying or time-limiting a run does not change what it computes, so
        ``timeout_s``/``max_retries`` must not fracture the result cache — a
        ``--resume`` with a different retry budget still hits yesterday's
        results.
        """
        payload = self.to_dict()
        for name in EXECUTION_POLICY_FIELDS:
            payload.pop(name, None)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RunSpec":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in fields})

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------- variants
    def replace(self, **changes) -> "RunSpec":
        return dataclasses.replace(self, **changes)


def coalesce_key(spec: RunSpec) -> str:
    """The canonical compatibility key of one run for lane coalescing.

    Two specs with equal keys compute *independent lanes of the same shared
    batch*: they agree on everything that shapes the simulated machine and
    its workload (design, engine, stimulus, cycle budget, kernel
    backend/threads, library, ...) and differ at most in the
    :data:`COALESCE_FREE_FIELDS` — the stimulus seed plus per-result shaping
    and execution policy.  :meth:`RTLEstimatorAdapter.estimate_many
    <repro.api.estimators.RTLEstimatorAdapter.estimate_many>` and the
    :mod:`repro.serve` coalescer both group by exactly this key, so the API
    and the server can never disagree about what is mergeable.

    The key is a canonical JSON string: stable across processes, hashable,
    and directly usable as a grouping key or in logs.  ``backend`` values
    ``auto`` and ``batch`` normalize to one key on the RTL engine — a merged
    group runs on the lane path either way, and lane count never changes
    results.
    """
    payload = spec.to_dict()
    for name in COALESCE_FREE_FIELDS:
        payload.pop(name, None)
    if spec.engine == "rtl" and payload.get("backend") in ("auto", "batch"):
        payload["backend"] = "batch"
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def is_coalescable(spec: RunSpec) -> bool:
    """Whether this spec can run as one lane of a shared batch.

    Only the RTL engine has a lane-vectorized estimator, and only the
    ``auto``/``batch`` backends route onto it; gate/emulation runs and
    explicitly scalar backends (``compiled``/``interp``) always execute
    alone.
    """
    return spec.engine == "rtl" and spec.backend in ("auto", "batch")


@dataclass(frozen=True)
class SweepSpec:
    """A (design × engine × stimulus-seed) sweep.

    Expands into one :class:`RunSpec` per combination.  Multi-seed RTL runs
    are grouped into BatchSimulator lanes (one settle per cycle for all
    seeds); groups/tasks fan out over the PR-2 process-pool shard runner when
    ``n_workers > 1``, and completed results persist in the on-disk result
    cache when ``cache_dir`` is set.
    """

    designs: Tuple[str, ...]
    engines: Tuple[str, ...] = ("rtl",)
    seeds: Tuple[int, ...] = (0,)
    max_cycles: Optional[int] = None
    backend: str = "auto"
    #: fused lane-kernel backend for multi-seed batch groups
    kernel_backend: str = "auto"
    #: native-kernel worker count for multi-seed batch groups (None = auto)
    kernel_threads: Optional[int] = None
    library: str = "seed"
    coefficient_bits: int = 12
    n_workers: int = 0
    cache_dir: Optional[str] = None
    #: declarative scenario driven instead of the designs' built-in testbenches
    stimulus: Optional[StimulusSpec] = None
    #: collect windowed power profiles on every expanded run
    power_profile: bool = False
    #: profile window width in cycles, copied into every expanded RunSpec
    profile_window: Optional[int] = None
    #: per-task wall-clock deadline, copied into every expanded RunSpec
    timeout_s: Optional[float] = None
    #: retries after the first attempt, copied into every expanded RunSpec
    max_retries: Optional[int] = None
    #: what a task failure does to the sweep: ``"raise"`` aborts with the
    #: task's exception; ``"skip"`` records a structured TaskFailure and keeps
    #: going, returning results for every healthy task
    on_error: str = "raise"

    def __post_init__(self) -> None:
        # tolerate lists (e.g. built from JSON / argparse) by normalizing
        for name in ("designs", "engines", "seeds"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
        if not self.designs:
            raise ValueError("sweep needs at least one design")
        for engine in self.engines:
            if engine not in ENGINES:
                raise ValueError(
                    f"unknown engine {engine!r}; expected one of {', '.join(ENGINES)}"
                )
        if self.kernel_backend not in KERNEL_BACKENDS:
            raise ValueError(
                f"unknown kernel backend {self.kernel_backend!r}; expected one "
                f"of {', '.join(KERNEL_BACKENDS)}"
            )
        if self.kernel_threads is not None and self.kernel_threads < 1:
            raise ValueError(
                f"kernel_threads must be >= 1 (or None for auto), got "
                f"{self.kernel_threads}"
            )
        seeds = self.seeds
        if len(set(seeds)) != len(seeds):
            duplicates = sorted({s for s in seeds if seeds.count(s) > 1})
            raise ValueError(
                f"duplicate stimulus seeds in sweep: "
                f"{', '.join(str(s) for s in duplicates)} — each seed is one "
                f"independent run/lane, so repeats would only re-estimate "
                f"identical results; drop the repeated seeds (on the CLI, "
                f"--seeds 0:4 already covers 0 1 2 3)"
            )
        if self.profile_window is not None and self.profile_window < 1:
            raise ValueError(
                f"profile_window must be >= 1 cycle (or None for the engine "
                f"default), got {self.profile_window}"
            )
        _check_policy_fields(self.timeout_s, self.max_retries)
        if self.on_error not in ON_ERROR_POLICIES:
            raise ValueError(
                f"unknown on_error policy {self.on_error!r}; expected one of "
                f"{', '.join(ON_ERROR_POLICIES)}"
            )
        object.__setattr__(self, "stimulus", _coerce_stimulus(self.stimulus))

    def run_specs(self) -> List[RunSpec]:
        """The sweep's full (design × engine × seed) RunSpec expansion."""
        return [
            RunSpec(
                design=design,
                engine=engine,
                seed=seed,
                stimulus=self.stimulus,
                max_cycles=self.max_cycles,
                backend=self.backend,
                kernel_backend=self.kernel_backend,
                kernel_threads=self.kernel_threads,
                library=self.library,
                coefficient_bits=self.coefficient_bits,
                power_profile=self.power_profile,
                profile_window=self.profile_window,
                timeout_s=self.timeout_s,
                max_retries=self.max_retries,
            )
            for design in self.designs
            for engine in self.engines
            for seed in self.seeds
        ]

    def to_dict(self) -> Dict[str, object]:
        payload = dataclasses.asdict(self)
        if self.stimulus is not None:
            # asdict() would drop the port-spec `kind` discriminators
            payload["stimulus"] = self.stimulus.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SweepSpec":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in fields})


@dataclass
class EstimateResult:
    """The uniform result of one :class:`RunSpec` through any engine.

    ``engine`` is the resolved estimator identity (e.g. ``rtl-macromodel``),
    ``backend`` the resolved simulation strategy (``compiled``, ``interp``,
    ``batch[n]``, or ``emulation``), ``timing`` a wall-clock breakdown in
    seconds, ``accuracy`` the relative error against the software RTL
    baseline when the spec asked for it, and ``metadata`` engine-specific
    extras (monitored bits, FPGA device, overheads, ...).
    """

    spec: RunSpec
    engine: str
    backend: str
    report: PowerReport
    timing: Dict[str, float] = field(default_factory=dict)
    accuracy: Optional[Dict[str, float]] = None
    metadata: Dict[str, object] = field(default_factory=dict)
    #: windowed power profile when the spec asked for ``power_profile``
    profile: Optional[PowerProfile] = None

    # ---------------------------------------------------------------- views
    @property
    def average_power_mw(self) -> float:
        return self.report.average_power_mw

    @property
    def total_s(self) -> float:
        return float(self.timing.get("total_s", 0.0))

    def summary(self) -> str:
        seed = f" seed={self.spec.seed}" if self.spec.seed is not None else ""
        accuracy = (
            f"  error vs rtl {100.0 * self.accuracy['relative_error']:+.2f}%"
            if self.accuracy
            else ""
        )
        return (
            f"{self.spec.design}[{self.spec.engine}/{self.backend}]{seed}: "
            f"{self.report.average_power_mw:.4f} mW over {self.report.cycles} "
            f"cycles in {self.total_s:.3f} s{accuracy}"
        )

    # -------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec.to_dict(),
            "engine": self.engine,
            "backend": self.backend,
            "report": self.report.to_dict(),
            "timing": dict(self.timing),
            "accuracy": dict(self.accuracy) if self.accuracy is not None else None,
            "metadata": dict(self.metadata),
            "profile": self.profile.to_dict() if self.profile is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "EstimateResult":
        return cls(
            spec=RunSpec.from_dict(payload["spec"]),
            engine=payload["engine"],
            backend=payload["backend"],
            report=PowerReport.from_dict(payload["report"]),
            timing=dict(payload.get("timing") or {}),
            accuracy=(
                dict(payload["accuracy"]) if payload.get("accuracy") is not None else None
            ),
            metadata=dict(payload.get("metadata") or {}),
            profile=(
                PowerProfile.from_dict(payload["profile"])
                if payload.get("profile") is not None
                else None
            ),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "EstimateResult":
        return cls.from_dict(json.loads(text))
